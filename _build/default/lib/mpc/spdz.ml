module Field = Fair_field.Field
module Rng = Fair_crypto.Rng
module Sha256 = Fair_crypto.Sha256
module Machine = Fair_exec.Machine
module Protocol = Fair_exec.Protocol
module Wire = Fair_exec.Wire

type auth = { share : Field.t; mac : Field.t }

let auth_add a b = { share = Field.add a.share b.share; mac = Field.add a.mac b.mac }
let auth_sub a b = { share = Field.sub a.share b.share; mac = Field.sub a.mac b.mac }
let auth_scale c a = { share = Field.mul c a.share; mac = Field.mul c a.mac }

let auth_add_const ~alpha_share ~first c a =
  { share = (if first then Field.add a.share c else a.share);
    mac = Field.add a.mac (Field.mul alpha_share c) }

type triple = { ta : auth; tb : auth; tc : auth }

type party_setup = {
  alpha_share : Field.t;
  first : bool;
  masks : auth array;
  clears : (int * Field.t) list;
  triples : triple array;
}

let setup_alpha_share s = s.alpha_share
let setup_clears s = s.clears

(* ------------------------------------------------------------------ *)
(* Dealer                                                              *)
(* ------------------------------------------------------------------ *)

let share_auth rng ~n ~alpha v =
  let shares = Fair_sharing.Additive.share_scalar rng ~n v in
  let macs = Fair_sharing.Additive.share_scalar rng ~n (Field.mul alpha v) in
  Array.init n (fun i -> { share = shares.(i); mac = macs.(i) })

let deal rng ~circuit ~n ~reveal_to =
  let open Circuit in
  let alpha_shares = Rng.field_vector rng n in
  let alpha = Array.fold_left Field.add Field.zero alpha_shares in
  let n_in = circuit.n_inputs in
  let mask_values = Array.init n_in (fun _ -> Rng.field rng) in
  let mask_shares = Array.map (share_auth rng ~n ~alpha) mask_values in
  List.iter
    (fun (w, p) ->
      if w < 0 || w >= n_in then invalid_arg "Spdz.deal: reveal of a non-input wire";
      if circuit.input_owner.(w) <> 0 then invalid_arg "Spdz.deal: reveal of a party-owned wire";
      if p < 1 || p > n then invalid_arg "Spdz.deal: reveal to invalid party")
    reveal_to;
  let mult_count = Circuit.n_mults circuit in
  let triples =
    Array.init mult_count (fun _ ->
        let a = Rng.field rng and b = Rng.field rng in
        let c = Field.mul a b in
        (share_auth rng ~n ~alpha a, share_auth rng ~n ~alpha b, share_auth rng ~n ~alpha c))
  in
  Array.init n (fun i ->
      let clears =
        List.concat
          [ List.filter_map
              (fun w ->
                if circuit.input_owner.(w) = i + 1 then Some (w, mask_values.(w)) else None)
              (List.init n_in (fun w -> w));
            List.filter_map
              (fun (w, p) -> if p = i + 1 then Some (w, mask_values.(w)) else None)
              reveal_to ]
      in
      { alpha_share = alpha_shares.(i);
        first = i = 0;
        masks = Array.map (fun s -> s.(i)) mask_shares;
        clears;
        triples = Array.map (fun (a, b, c) -> { ta = a.(i); tb = b.(i); tc = c.(i) }) triples })

(* ------------------------------------------------------------------ *)
(* Setup serialization                                                 *)
(* ------------------------------------------------------------------ *)

let setup_to_string s =
  let b = Buffer.create 256 in
  let emit n =
    Buffer.add_string b (string_of_int n);
    Buffer.add_char b ';'
  in
  emit (Field.to_int s.alpha_share);
  emit (if s.first then 1 else 0);
  emit (Array.length s.masks);
  Array.iter
    (fun a ->
      emit (Field.to_int a.share);
      emit (Field.to_int a.mac))
    s.masks;
  emit (List.length s.clears);
  List.iter
    (fun (w, v) ->
      emit w;
      emit (Field.to_int v))
    s.clears;
  emit (Array.length s.triples);
  Array.iter
    (fun t ->
      List.iter
        (fun a ->
          emit (Field.to_int a.share);
          emit (Field.to_int a.mac))
        [ t.ta; t.tb; t.tc ])
    s.triples;
  Buffer.contents b

let setup_of_string str =
  let parts = Array.of_list (List.filter (fun s -> s <> "") (String.split_on_char ';' str)) in
  let pos = ref 0 in
  let next () =
    if !pos >= Array.length parts then invalid_arg "Spdz.setup_of_string: truncated";
    let v =
      match int_of_string_opt parts.(!pos) with
      | Some v -> v
      | None -> invalid_arg "Spdz.setup_of_string: not an int"
    in
    incr pos;
    v
  in
  let next_field () = Field.of_int (next ()) in
  let next_auth () =
    let share = next_field () in
    let mac = next_field () in
    { share; mac }
  in
  let alpha_share = next_field () in
  let first = next () = 1 in
  let masks = Array.init (next ()) (fun _ -> next_auth ()) in
  let clears =
    List.init (next ()) (fun _ ->
        let w = next () in
        (w, next_field ()))
  in
  let triples =
    Array.init (next ()) (fun _ ->
        let ta = next_auth () in
        let tb = next_auth () in
        let tc = next_auth () in
        { ta; tb; tc })
  in
  { alpha_share; first; masks; clears; triples }

(* ------------------------------------------------------------------ *)
(* Online protocol                                                     *)
(* ------------------------------------------------------------------ *)

type stage_plan = stage_index:int -> opened:(Circuit.wire * Field.t) list -> Circuit.wire list option

let single_stage_plan circuit ~stage_index ~opened:_ =
  if stage_index = 0 then Some (Array.to_list circuit.Circuit.outputs) else None

(* Multiplication layering: layer k (0-based) holds the Mul gates at
   multiplicative depth k+1. *)
let layering (circuit : Circuit.t) =
  let n_in = circuit.n_inputs in
  let depth = Array.make (Circuit.n_wires circuit) 0 in
  let layers = Hashtbl.create 8 in
  Array.iteri
    (fun g gate ->
      let w = n_in + g in
      let d =
        match gate with
        | Circuit.Add (a, b) | Circuit.Sub (a, b) -> max depth.(a) depth.(b)
        | Circuit.Mul (a, b) ->
            let d = max depth.(a) depth.(b) + 1 in
            let cur = try Hashtbl.find layers d with Not_found -> [] in
            Hashtbl.replace layers d (g :: cur);
            d
        | Circuit.Mul_const (_, a) | Circuit.Add_const (_, a) -> depth.(a)
        | Circuit.Const _ -> 0
      in
      depth.(w) <- d)
    circuit.gates;
  let max_depth = Array.fold_left max 0 depth in
  Array.init max_depth (fun d ->
      List.sort compare (try Hashtbl.find layers (d + 1) with Not_found -> []))

let triple_index (circuit : Circuit.t) =
  let tbl = Hashtbl.create 8 in
  let k = ref 0 in
  Array.iteri
    (fun g gate ->
      match gate with
      | Circuit.Mul _ ->
          Hashtbl.add tbl g !k;
          incr k
      | _ -> ())
    circuit.gates;
  tbl

(* What we are about to send in the stage machinery. *)
type stage_sub = Send_shares | Send_commit | Send_open

type run_state = {
  wires : auth option array; (* copy-on-write: never mutated in place *)
  beaver : (int * (Field.t * Field.t)) list; (* opened (d, e) per Mul gate *)
  opens_log : (Field.t * Field.t) list; (* (public value, my mac share), newest first *)
  public : (Circuit.wire * Field.t) list; (* opened outputs, oldest first *)
  stage : int;
  stage_wires : Circuit.wire list;
  stage_sub : stage_sub;
  my_sigma : Field.t;
  my_salt : string;
  peer_commits : (int * string) list;
  halted : bool;
}

let protocol ~name ~circuit ~n ~encode_input ~reveal_to ~plan ~output_of ~on_abort ~max_stages
    =
  let layers = layering circuit in
  let n_layers = Array.length layers in
  let tidx = triple_index circuit in
  let n_in = circuit.Circuit.n_inputs in
  let stage_base = n_layers + 2 in
  let max_rounds = stage_base + (3 * max_stages) + 3 in
  let setup rng = Array.map setup_to_string (deal rng ~circuit ~n ~reveal_to) in
  let make_party ~rng ~id ~n:_ ~input ~setup =
    let su = setup_of_string setup in
    let my_input_wires =
      List.filter (fun w -> circuit.Circuit.input_owner.(w) = id) (List.init n_in (fun w -> w))
    in
    let input_values =
      let vs = encode_input ~id input in
      if List.length vs <> List.length my_input_wires then invalid_arg "Spdz: encode_input arity";
      List.combine my_input_wires vs
    in
    let salts = Array.init (max_stages + 1) (fun _ -> Sha256.to_hex (Rng.bytes rng 16)) in
    let abort_actions st =
      match on_abort ~id ~input ~opened:st.public ~clears:su.clears with
      | Some out -> [ Machine.Output out ]
      | None -> [ Machine.Abort_self ]
    in
    let clear_of w = List.assoc_opt w su.clears in
    (* Exactly one well-formed broadcast of [kind] from every peer. *)
    let collect_peers ~inbox ~kind =
      let found = Hashtbl.create 8 in
      List.iter
        (fun (src, payload) ->
          if src >= 1 && src <= n && src <> id && not (Hashtbl.mem found src) then
            match Wire.unframe payload with
            | [ k; body ] when String.equal k kind -> Hashtbl.add found src body
            | _ | (exception Invalid_argument _) -> ())
        inbox;
      if Hashtbl.length found = n - 1 then
        Some
          (List.filter_map
             (fun j -> if j = id then None else Option.map (fun b -> (j, b)) (Hashtbl.find_opt found j))
             (List.init n (fun i -> i + 1)))
      else None
    in
    let parse_kv body =
      try
        if body = "" then Some []
        else
          Some
            (List.map
               (fun item ->
                 match String.split_on_char ':' item with
                 | [ k; v ] ->
                     (int_of_string k, List.map int_of_string (String.split_on_char '.' v))
                 | _ -> failwith "kv")
               (String.split_on_char ',' body))
      with _ -> None
    in
    let fmt_kv kvs =
      String.concat ","
        (List.map
           (fun (k, vs) -> Printf.sprintf "%d:%s" k (String.concat "." (List.map string_of_int vs)))
           kvs)
    in
    (* Evaluate every gate whose operands (and Beaver openings) are ready. *)
    let compute_ready st =
      let wires = Array.copy st.wires in
      let changed = ref true in
      while !changed do
        changed := false;
        Array.iteri
          (fun g gate ->
            let w = n_in + g in
            if wires.(w) = None then
              let value =
                match gate with
                | Circuit.Add (a, b) -> (
                    match (wires.(a), wires.(b)) with
                    | Some x, Some y -> Some (auth_add x y)
                    | _ -> None)
                | Circuit.Sub (a, b) -> (
                    match (wires.(a), wires.(b)) with
                    | Some x, Some y -> Some (auth_sub x y)
                    | _ -> None)
                | Circuit.Mul_const (c, a) -> Option.map (auth_scale c) wires.(a)
                | Circuit.Add_const (c, a) ->
                    Option.map
                      (auth_add_const ~alpha_share:su.alpha_share ~first:su.first c)
                      wires.(a)
                | Circuit.Const c ->
                    Some
                      (auth_add_const ~alpha_share:su.alpha_share ~first:su.first c
                         { share = Field.zero; mac = Field.zero })
                | Circuit.Mul (_, _) -> (
                    match List.assoc_opt g st.beaver with
                    | Some (d, e) ->
                        let t = su.triples.(Hashtbl.find tidx g) in
                        let z =
                          auth_add t.tc (auth_add (auth_scale d t.tb) (auth_scale e t.ta))
                        in
                        Some
                          (auth_add_const ~alpha_share:su.alpha_share ~first:su.first
                             (Field.mul d e) z)
                    | None -> None)
              in
              match value with
              | Some v ->
                  wires.(w) <- Some v;
                  changed := true
              | None -> ())
          circuit.Circuit.gates
      done;
      { st with wires }
    in
    let my_beaver_shares st g =
      match circuit.Circuit.gates.(g) with
      | Circuit.Mul (a, b) ->
          let x = Option.get st.wires.(a) and y = Option.get st.wires.(b) in
          let t = su.triples.(Hashtbl.find tidx g) in
          (auth_sub x t.ta, auth_sub y t.tb)
      | _ -> assert false
    in
    let layer_message st layer =
      fmt_kv
        (List.map
           (fun g ->
             let d, e = my_beaver_shares st g in
             (g, [ Field.to_int d.share; Field.to_int e.share ]))
           layer)
    in
    let process_layer st layer peers =
      let parsed = List.map (fun (j, body) -> (j, parse_kv body)) peers in
      if List.exists (fun (_, p) -> p = None) parsed then None
      else begin
        let parsed = List.map (fun (j, p) -> (j, Option.get p)) parsed in
        let ok = ref true in
        let log = ref st.opens_log in
        let beaver = ref st.beaver in
        List.iter
          (fun g ->
            let my_d, my_e = my_beaver_shares st g in
            let sum_d = ref my_d.share and sum_e = ref my_e.share in
            List.iter
              (fun (_, items) ->
                match List.assoc_opt g items with
                | Some [ ds; es ] ->
                    sum_d := Field.add !sum_d (Field.of_int ds);
                    sum_e := Field.add !sum_e (Field.of_int es)
                | _ -> ok := false)
              parsed;
            beaver := (g, (!sum_d, !sum_e)) :: !beaver;
            log := (!sum_e, my_e.mac) :: (!sum_d, my_d.mac) :: !log)
          layer;
        if !ok then Some { st with opens_log = !log; beaver = !beaver } else None
      end
    in
    let process_eps st peers =
      let parsed = List.map (fun (j, b) -> (j, parse_kv b)) peers in
      if List.exists (fun (_, p) -> p = None) parsed then None
      else begin
        let parsed = List.map (fun (j, p) -> (j, Option.get p)) parsed in
        let eps = Array.make (max 1 n_in) Field.zero in
        let ok = ref true in
        List.iter (fun (w, x) -> eps.(w) <- Field.sub x (Option.get (clear_of w))) input_values;
        List.iter
          (fun (j, items) ->
            let expected =
              List.filter (fun w -> circuit.Circuit.input_owner.(w) = j) (List.init n_in (fun w -> w))
            in
            if List.length items <> List.length expected then ok := false
            else
              List.iter
                (fun (w, vs) ->
                  match vs with
                  | [ v ] when List.mem w expected -> eps.(w) <- Field.of_int v
                  | _ -> ok := false)
                items)
          parsed;
        if not !ok then None
        else begin
          let wires = Array.copy st.wires in
          for w = 0 to n_in - 1 do
            let base = su.masks.(w) in
            wires.(w) <-
              Some
                (if circuit.Circuit.input_owner.(w) = 0 then base
                 else auth_add_const ~alpha_share:su.alpha_share ~first:su.first eps.(w) base)
          done;
          Some { st with wires }
        end
      end
    in
    let process_stage_shares st peers =
      let parsed = List.map (fun (j, body) -> (j, parse_kv body)) peers in
      if List.exists (fun (_, p) -> p = None) parsed then None
      else begin
        let parsed = List.map (fun (j, p) -> (j, Option.get p)) parsed in
        let ok = ref true in
        let log = ref st.opens_log in
        let public = ref st.public in
        List.iter
          (fun w ->
            let mine = Option.get st.wires.(w) in
            let total = ref mine.share in
            List.iter
              (fun (_, items) ->
                match List.assoc_opt w items with
                | Some [ s ] -> total := Field.add !total (Field.of_int s)
                | _ -> ok := false)
              parsed;
            log := (!total, mine.mac) :: !log;
            public := !public @ [ (w, !total) ])
          (List.sort compare st.stage_wires);
        if !ok then Some { st with opens_log = !log; public = !public } else None
      end
    in
    (* MAC check: sigma_i = Σ_j chi_j (m_ij - alpha_i v_j) over everything
       opened so far, with chi derived from the transcript. *)
    let sigma_of st =
      let log = List.rev st.opens_log in
      let seed =
        Sha256.digest
          (String.concat "," (List.map (fun (v, _) -> string_of_int (Field.to_int v)) log)
          ^ "#stage" ^ string_of_int st.stage)
      in
      let chi_rng = Rng.create ~seed in
      List.fold_left
        (fun acc (v, m) ->
          let chi = Rng.field chi_rng in
          Field.add acc (Field.mul chi (Field.sub m (Field.mul su.alpha_share v))))
        Field.zero log
    in
    let process_sigma_opens st peers =
      let parsed =
        List.map
          (fun (j, body) ->
            match String.split_on_char '.' body with
            | [ s; salt_hex ] -> (
                match int_of_string_opt s with
                | Some s -> Some (j, Field.of_int s, salt_hex)
                | None -> None)
            | _ -> None)
          peers
      in
      if List.exists (fun p -> p = None) parsed then None
      else begin
        let parsed = List.map Option.get parsed in
        let ok = ref true in
        let total = ref st.my_sigma in
        List.iter
          (fun (j, sigma, salt_hex) ->
            (match List.assoc_opt j st.peer_commits with
            | Some c ->
                let expect =
                  Sha256.hex_digest (salt_hex ^ "#" ^ string_of_int (Field.to_int sigma))
                in
                if not (String.equal c expect) then ok := false
            | None -> ok := false);
            total := Field.add !total sigma)
          parsed;
        if !ok && Field.equal !total Field.zero then Some st else None
      end
    in
    (* --------------------------------------------------------------- *)
    let step st ~round ~inbox =
      if st.halted then (st, [])
      else
        let fail () = ({ st with halted = true }, abort_actions st) in
        (* 1. Process what arrived (sent in round-1). *)
        let processed =
          if round = 1 then Some st
          else if round = 2 then
            match collect_peers ~inbox ~kind:"eps" with
            | None -> None
            | Some peers -> process_eps st peers
          else if round <= n_layers + 2 then
            match collect_peers ~inbox ~kind:"beaver" with
            | None -> None
            | Some peers -> process_layer st layers.(round - 3) peers
          else
            match st.stage_sub with
            | Send_commit -> (
                match collect_peers ~inbox ~kind:"shares" with
                | None -> None
                | Some peers -> process_stage_shares st peers)
            | Send_open -> (
                match collect_peers ~inbox ~kind:"sigc" with
                | None -> None
                | Some peers -> Some { st with peer_commits = peers })
            | Send_shares -> (
                match collect_peers ~inbox ~kind:"sigo" with
                | None -> None
                | Some peers -> process_sigma_opens st peers)
        in
        match processed with
        | None -> fail ()
        | Some st -> (
            let st = compute_ready st in
            (* 2. Send this round's message. *)
            if round = 1 then
              let msg =
                fmt_kv
                  (List.map
                     (fun (w, x) ->
                       let r = Option.get (clear_of w) in
                       (w, [ Field.to_int (Field.sub x r) ]))
                     input_values)
              in
              (st, [ Machine.Send (Wire.Broadcast, Wire.frame [ "eps"; msg ]) ])
            else if round <= n_layers + 1 then
              let body = layer_message st layers.(round - 2) in
              (st, [ Machine.Send (Wire.Broadcast, Wire.frame [ "beaver"; body ]) ])
            else
              match st.stage_sub with
              | Send_shares -> (
                  match plan ~stage_index:st.stage ~opened:st.public with
                  | None ->
                      let out = output_of ~id ~opened:st.public ~clears:su.clears in
                      ({ st with halted = true }, [ Machine.Output out ])
                  | Some wires_to_open ->
                      if
                        List.exists
                          (fun w -> w < 0 || w >= Array.length st.wires || st.wires.(w) = None)
                          wires_to_open
                      then fail ()
                      else
                        let body =
                          fmt_kv
                            (List.map
                               (fun w ->
                                 ( w,
                                   [ Field.to_int (Option.get st.wires.(w)).share ] ))
                               (List.sort compare wires_to_open))
                        in
                        ( { st with stage_wires = wires_to_open; stage_sub = Send_commit },
                          [ Machine.Send (Wire.Broadcast, Wire.frame [ "shares"; body ]) ] ))
              | Send_commit ->
                  let sigma = sigma_of st in
                  let salt = salts.(st.stage mod (max_stages + 1)) in
                  let c = Sha256.hex_digest (salt ^ "#" ^ string_of_int (Field.to_int sigma)) in
                  ( { st with my_sigma = sigma; my_salt = salt; stage_sub = Send_open },
                    [ Machine.Send (Wire.Broadcast, Wire.frame [ "sigc"; c ]) ] )
              | Send_open ->
                  let body = Printf.sprintf "%d.%s" (Field.to_int st.my_sigma) st.my_salt in
                  ( { st with stage = st.stage + 1; stage_sub = Send_shares },
                    [ Machine.Send (Wire.Broadcast, Wire.frame [ "sigo"; body ]) ] ))
    in
    let init =
      { wires = Array.make (Circuit.n_wires circuit) None;
        beaver = [];
        opens_log = [];
        public = [];
        stage = 0;
        stage_wires = [];
        stage_sub = Send_shares;
        my_sigma = Field.zero;
        my_salt = "";
        peer_commits = [];
        halted = false }
    in
    Machine.make init step
  in
  Protocol.make ~name ~parties:n ~max_rounds ~setup make_party

let sfe ~name ~circuit ~n ~encode_input ~decode_output =
  protocol ~name ~circuit ~n
    ~encode_input:(fun ~id input -> encode_input ~id input)
    ~reveal_to:[]
    ~plan:(single_stage_plan circuit)
    ~output_of:(fun ~id:_ ~opened ~clears:_ ->
      decode_output (Array.of_list (List.map snd opened)))
    ~on_abort:(fun ~id:_ ~input:_ ~opened:_ ~clears:_ -> None)
    ~max_stages:2
