(** A SPDZ-style maliciously secure-with-abort MPC protocol over GF(2^31-1):
    the repository's stand-in for the "unfair SFE protocol ΠGMW" the paper
    uses as the phase-1 substrate (see DESIGN.md for the substitution
    argument).

    Preprocessing comes from a trusted dealer (replacing OT/HE-based triple
    generation): a global MAC key α is additively shared among the parties,
    every shared value [x] consists of additive shares of x and of α·x, and
    every multiplication gate consumes one Beaver triple.

    Online phase round schedule (all messages are broadcasts):

    + round 1 — input phase: every party masks each of its input wires with
      its dealer-issued mask and broadcasts ε = x − r;
    + rounds 2..L+1 — one round per multiplication layer: Beaver openings
      d = x − a, e = y − b for every gate in the layer;
    + then, per *opening stage* (the staged output reveal that fairness
      protocols are built from), three rounds: (a) broadcast of the output
      shares, (b) broadcast of a commitment to this party's MAC-check value
      σ_i, (c) opening of the commitments.  The check covers a random linear
      combination (coefficients derived from the transcript) of {e}very{e}
      value opened so far, so a share forged in any earlier round is caught
      at the next stage boundary, before further secrets are revealed.

    Any missing or invalid broadcast makes honest parties abort; what they
    then output is the protocol designer's choice via [on_abort] (⊥ for the
    standalone SFE protocol, "evaluate f locally on a default input" for
    ΠOpt-2SFE's phase 1).

    A rushing adversary attacking the *last* stage sees the honest shares
    first and can withhold its own: it learns the output while honest
    parties abort.  That is Cleve-style unfairness, and it is precisely the
    behaviour the paper's Theorem 3/4 analysis expects from the substrate:
    the interesting protocols never open the function output in a single
    SPDZ stage. *)

module Field = Fair_field.Field
module Rng = Fair_crypto.Rng

(** {1 Authenticated shares (exposed for tests and for building custom
    protocols on the substrate)} *)

type auth = { share : Field.t; mac : Field.t }
(** One party's additive share of a value and of α·value. *)

val auth_add : auth -> auth -> auth
val auth_sub : auth -> auth -> auth
val auth_scale : Field.t -> auth -> auth

val auth_add_const : alpha_share:Field.t -> first:bool -> Field.t -> auth -> auth
(** Add a public constant: only the designated first party adjusts its value
    share; every party adjusts its MAC share by α_i·c. *)

(** {1 Dealer} *)

type party_setup
(** Everything the dealer hands one party: its α-share, authenticated mask /
    randomness shares for every input wire, clear mask values for the wires
    it owns or that are revealed to it, and Beaver triples. *)

val deal : Rng.t -> circuit:Circuit.t -> n:int -> reveal_to:(Circuit.wire * int) list -> party_setup array
(** Dealer-owned input wires (owner 0) are uniform random values shared
    among the parties; [reveal_to] additionally hands the clear value of a
    dealer wire to one party (the mask mechanism for private outputs).
    @raise Invalid_argument if a reveal refers to a party-owned wire. *)

val setup_to_string : party_setup -> string
val setup_of_string : string -> party_setup
(** Serialization used to pass setups through {!Fair_exec.Protocol.t}. *)

val setup_alpha_share : party_setup -> Field.t
val setup_clears : party_setup -> (Circuit.wire * Field.t) list
(** The clear mask values this party knows (own wires and reveals). *)

(** {1 The online protocol} *)

type stage_plan = stage_index:int -> opened:(Circuit.wire * Field.t) list -> Circuit.wire list option
(** Called after every completed stage with everything publicly opened so
    far; returns the next set of output wires to open publicly, or [None]
    when the protocol is finished.  All parties see the same public values,
    so they agree on the (possibly data-dependent) schedule. *)

val single_stage_plan : Circuit.t -> stage_plan
(** Open every output wire in one stage — the standalone unfair-SFE plan. *)

val protocol :
  name:string ->
  circuit:Circuit.t ->
  n:int ->
  encode_input:(id:int -> string -> Field.t list) ->
  (* values for the party's input wires, in wire order *)
  reveal_to:(Circuit.wire * int) list ->
  plan:stage_plan ->
  output_of:
    (id:int -> opened:(Circuit.wire * Field.t) list -> clears:(Circuit.wire * Field.t) list ->
     string) ->
  on_abort:
    (id:int -> input:string -> opened:(Circuit.wire * Field.t) list ->
     clears:(Circuit.wire * Field.t) list -> string option) ->
  (* called when the party detects a deviation; it receives everything
     publicly opened so far plus its private mask clears. [None] = output ⊥ *)
  max_stages:int ->
  Fair_exec.Protocol.t

val sfe :
  name:string -> circuit:Circuit.t -> n:int ->
  encode_input:(id:int -> string -> Field.t list) ->
  decode_output:(Field.t array -> string) ->
  Fair_exec.Protocol.t
(** The standalone secure-with-abort SFE protocol: single public opening of
    all outputs, ⊥ on abort. *)
