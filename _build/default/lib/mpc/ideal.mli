(** Ideal functionalities (trusted parties, engine id 0) and the "dummy"
    protocols that consist of nothing but calling them.

    All functionalities follow a fixed schedule so that executions have
    guaranteed termination (the model of Canetti [6] as used by the paper):

    - round 1: parties send ["input|x"] to the functionality;
    - round 2 ([compute_round]): the functionality evaluates the function,
      substituting a party's default input when no input arrived (a party
      that aborts before contributing); from this round on it answers
      ["get-output"] requests from corrupted parties with ["output|y_i"];
    - round 4 ([release_round]): outputs are released to all parties —
      unless an ["abort"] arrived first, in which case {!sfe_abort} sends
      ["abort"] (honest parties output ⊥) and {!sfe_random_abort} sends a
      freshly sampled fake output (the F_sfe^$ of Appendix C.2).

    The two-round gap between compute and release is the "delayed output"
    window: a rushing adversary can request the corrupted parties' outputs,
    see them, and still abort before any honest party receives anything —
    exactly the power F_sfe^⊥ grants the simulator.  {!sfe_fair} releases at
    [compute_round] + 1 and ignores aborts: full fairness. *)

module Rng = Fair_crypto.Rng
module Machine = Fair_exec.Machine
module Protocol = Fair_exec.Protocol

val compute_round : int
val release_round : int
val dummy_rounds : int
(** Number of rounds a dummy-protocol execution takes (= 5). *)

val msg_input : string -> Fair_exec.Wire.payload
val msg_get_output : Fair_exec.Wire.payload
val msg_abort : Fair_exec.Wire.payload
(** Payload constructors for talking to a functionality (used by protocols
    and by adversary strategies). *)

type per_party_outputs = Rng.t -> inputs:string array -> string array
(** A (possibly randomized) assignment of one private output per party;
    used to express functionalities like F_priv-sfe whose outputs differ
    across parties. *)

val global_outputs : Func.t -> per_party_outputs
(** Every party receives the same [Func.eval inputs]. *)

val sfe_abort : func:Func.t -> ?outputs:per_party_outputs -> unit -> Rng.t -> n:int -> Machine.t
(** F_sfe^⊥: SFE with unanimous abort and delayed output. *)

val sfe_fair : func:Func.t -> unit -> Rng.t -> n:int -> Machine.t
(** Fully fair SFE: outputs released simultaneously, aborts ignored. *)

type sampler = Rng.t -> inputs:string array -> honest:Fair_exec.Wire.party_id -> string
(** The replacement-output distribution Y_i(x_i) of F_sfe^$. *)

val sfe_random_abort : func:Func.t -> sampler:sampler -> unit -> Rng.t -> n:int -> Machine.t
(** F_sfe^$ (Appendix C.2): on abort, honest parties receive a random output
    drawn from [sampler] instead of ⊥. *)

(** {1 Dummy protocols} *)

val dummy_party : rng:Rng.t -> id:Fair_exec.Wire.party_id -> n:int -> input:string -> setup:string -> Machine.t
(** Sends its input to the functionality, outputs whatever comes back
    (⊥ on ["abort"]). *)

val dummy_protocol_abort : Func.t -> Protocol.t
(** Φ^{F_sfe^⊥}: the unfair-SFE baseline. *)

val dummy_protocol_fair : Func.t -> Protocol.t
(** Φ^{F_sfe}: the ideally fair protocol of Definition 19. *)

val dummy_protocol_random_abort : Func.t -> sampler -> Protocol.t
