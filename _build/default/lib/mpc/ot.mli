(** 1-out-of-2 oblivious transfer from trusted-dealer correlations
    (Beaver's precomputed OT) — the transfer primitive underneath the GMW
    protocol's AND gates.

    The dealer hands the sender two random pads (r0, r1) and the receiver a
    random choice bit c together with r_c.  Online, for actual messages
    (m0, m1) and choice b:

    + receiver publishes d = b ⊕ c;
    + sender publishes (e0, e1) = (m0 ⊕ r_d, m1 ⊕ r_{1⊕d});
    + receiver outputs m_b = e_b ⊕ r_c.

    Correctness: e_b = m_b ⊕ r_{b⊕d} = m_b ⊕ r_c.  The sender learns
    nothing about b (d is one-time-padded by c) and the receiver learns
    nothing about m_{1−b} (padded by the pad it does not hold).

    This replaces the computational OT of the GMW paper — see DESIGN.md's
    substitution table. *)

type sender_corr = { r0 : bool; r1 : bool }
type receiver_corr = { c : bool; rc : bool }

val deal : Fair_crypto.Rng.t -> sender_corr * receiver_corr
(** One fresh correlation (consumed by one transfer). *)

val receiver_round1 : receiver_corr -> choice:bool -> bool
(** d = choice ⊕ c, sent to the sender. *)

val sender_round2 : sender_corr -> d:bool -> m0:bool -> m1:bool -> bool * bool
(** (e0, e1), sent back to the receiver. *)

val receiver_output : receiver_corr -> choice:bool -> e0:bool -> e1:bool -> bool
(** m_choice. *)

val transfer :
  sender:sender_corr -> receiver:receiver_corr -> m0:bool -> m1:bool -> choice:bool -> bool
(** The whole dance locally — used by tests as the correctness oracle. *)
