module Rng = Fair_crypto.Rng
module Machine = Fair_exec.Machine
module Protocol = Fair_exec.Protocol
module Wire = Fair_exec.Wire

(* Per-AND-gate dealer material for one party: its cross-term blinding bit
   s, the sender correlation for the OT in which it plays sender, and the
   receiver correlation for the other one. *)
type and_setup = { s : bool; snd_corr : Ot.sender_corr; rcv_corr : Ot.receiver_corr }

type party_setup = {
  ands : and_setup array; (* indexed by AND-gate occurrence order *)
  dealer_shares : (int * bool) list; (* shares of dealer-owned input wires *)
}

let bit b = if b then '1' else '0'
let unbit c = c = '1'

let setup_to_string su =
  let b = Buffer.create 64 in
  Array.iter
    (fun a ->
      Buffer.add_char b (bit a.s);
      Buffer.add_char b (bit a.snd_corr.Ot.r0);
      Buffer.add_char b (bit a.snd_corr.Ot.r1);
      Buffer.add_char b (bit a.rcv_corr.Ot.c);
      Buffer.add_char b (bit a.rcv_corr.Ot.rc))
    su.ands;
  Buffer.add_char b '#';
  List.iter
    (fun (w, v) ->
      Buffer.add_string b (string_of_int w);
      Buffer.add_char b ':';
      Buffer.add_char b (bit v);
      Buffer.add_char b ';')
    su.dealer_shares;
  Buffer.contents b

let setup_of_string s =
  match String.index_opt s '#' with
  | None -> invalid_arg "Gmw.setup_of_string"
  | Some pos ->
      let head = String.sub s 0 pos in
      if String.length head mod 5 <> 0 then invalid_arg "Gmw.setup_of_string";
      let ands =
        Array.init
          (String.length head / 5)
          (fun i ->
            let at k = unbit head.[(5 * i) + k] in
            { s = at 0;
              snd_corr = { Ot.r0 = at 1; r1 = at 2 };
              rcv_corr = { Ot.c = at 3; rc = at 4 } })
      in
      let rest = String.sub s (pos + 1) (String.length s - pos - 1) in
      let dealer_shares =
        List.filter_map
          (fun item ->
            if item = "" then None
            else
              match String.split_on_char ':' item with
              | [ w; v ] when String.length v = 1 -> (
                  match int_of_string_opt w with
                  | Some w -> Some (w, unbit v.[0])
                  | None -> invalid_arg "Gmw.setup_of_string")
              | _ -> invalid_arg "Gmw.setup_of_string")
          (String.split_on_char ';' rest)
      in
      { ands; dealer_shares }

(* AND-gate layering by AND-depth, as in Spdz.layering. *)
let layering (c : Boolcirc.t) =
  let n_in = c.Boolcirc.n_inputs in
  let depth = Array.make (Boolcirc.n_wires c) 0 in
  let layers = Hashtbl.create 8 in
  Array.iteri
    (fun g gate ->
      let d =
        match gate with
        | Boolcirc.Xor (a, b) -> max depth.(a) depth.(b)
        | Boolcirc.And (a, b) ->
            let d = max depth.(a) depth.(b) + 1 in
            let cur = try Hashtbl.find layers d with Not_found -> [] in
            Hashtbl.replace layers d (g :: cur);
            d
        | Boolcirc.Not a -> depth.(a)
        | Boolcirc.Const _ -> 0
      in
      depth.(n_in + g) <- d)
    c.Boolcirc.gates;
  let max_depth = Array.fold_left max 0 depth in
  Array.init max_depth (fun d ->
      List.sort compare (try Hashtbl.find layers (d + 1) with Not_found -> []))

let and_index (c : Boolcirc.t) =
  let tbl = Hashtbl.create 8 in
  let k = ref 0 in
  Array.iteri
    (fun g gate ->
      match gate with
      | Boolcirc.And _ ->
          Hashtbl.add tbl g !k;
          incr k
      | _ -> ())
    c.Boolcirc.gates;
  tbl

let rounds ~circuit = (2 * Array.length (layering circuit)) + 4

let deal rng (circuit : Boolcirc.t) =
  let n_ands = Boolcirc.n_ands circuit in
  (* OT1: p1 sender (messages depend on p1's a-share), p2 receiver;
     OT2: the mirror image. *)
  let ot1 = Array.init n_ands (fun _ -> Ot.deal rng) in
  let ot2 = Array.init n_ands (fun _ -> Ot.deal rng) in
  let s1 = Array.init n_ands (fun _ -> Rng.bool rng) in
  let s2 = Array.init n_ands (fun _ -> Rng.bool rng) in
  let dealer_wires =
    List.filter
      (fun w -> circuit.Boolcirc.input_owner.(w) = 0)
      (List.init circuit.Boolcirc.n_inputs (fun w -> w))
  in
  let dealer_bits = List.map (fun w -> (w, Rng.bool rng, Rng.bool rng)) dealer_wires in
  let p1 =
    { ands =
        Array.init n_ands (fun i ->
            { s = s1.(i); snd_corr = fst ot1.(i); rcv_corr = snd ot2.(i) });
      dealer_shares = List.map (fun (w, b1, _) -> (w, b1)) dealer_bits }
  in
  let p2 =
    { ands =
        Array.init n_ands (fun i ->
            { s = s2.(i); snd_corr = fst ot2.(i); rcv_corr = snd ot1.(i) });
      dealer_shares = List.map (fun (w, _, b2) -> (w, b2)) dealer_bits }
  in
  [| setup_to_string p1; setup_to_string p2 |]

type state = {
  shares : bool option array;
  pending_d : (int * bool) list; (* peer's d bit per gate, from the last d-round *)
  halted : bool;
}

let protocol ~name ~circuit ~encode_input ~decode_output =
  Array.iter
    (fun p -> if p < 0 || p > 2 then invalid_arg "Gmw.protocol: two parties only")
    circuit.Boolcirc.input_owner;
  let layers = layering circuit in
  let n_layers = Array.length layers in
  let aidx = and_index circuit in
  let n_in = circuit.Boolcirc.n_inputs in
  let out_round = (2 * n_layers) + 2 in
  let make_party ~rng ~id ~n:_ ~input ~setup =
    let su = setup_of_string setup in
    let peer = 3 - id in
    let my_wires =
      List.filter (fun w -> circuit.Boolcirc.input_owner.(w) = id) (List.init n_in (fun w -> w))
    in
    let my_bits =
      let bits = encode_input ~id input in
      if Array.length bits <> List.length my_wires then invalid_arg "Gmw: encode_input arity";
      bits
    in
    (* Pre-draw the masks for our own input wires (machine purity). *)
    let masks = Array.init (List.length my_wires) (fun _ -> Rng.bool rng) in
    let find_peer_msg ~inbox ~tag =
      List.find_map
        (fun (src, payload) ->
          if src = peer then
            match Wire.unframe payload with
            | [ t; body ] when String.equal t tag -> Some body
            | _ | (exception Invalid_argument _) -> None
          else None)
        inbox
    in
    (* Evaluate all local gates whose operands are known (AND gates are
       filled in by the OT machinery). *)
    let compute_local st =
      let shares = Array.copy st.shares in
      let changed = ref true in
      while !changed do
        changed := false;
        Array.iteri
          (fun g gate ->
            let w = n_in + g in
            if shares.(w) = None then
              let v =
                match gate with
                | Boolcirc.Xor (a, b) -> (
                    match (shares.(a), shares.(b)) with
                    | Some x, Some y -> Some (x <> y)
                    | _ -> None)
                | Boolcirc.Not a ->
                    (* only one party flips its share *)
                    Option.map (fun x -> if id = 1 then not x else x) shares.(a)
                | Boolcirc.Const c -> Some (if id = 1 then c else false)
                | Boolcirc.And _ -> None
              in
              match v with
              | Some v ->
                  shares.(w) <- Some v;
                  changed := true
              | None -> ())
          circuit.Boolcirc.gates
      done;
      { st with shares }
    in
    let operands g =
      match circuit.Boolcirc.gates.(g) with
      | Boolcirc.And (a, b) -> (a, b)
      | _ -> assert false
    in
    (* My d-bits for a layer: I am receiver with choice = my b-share. *)
    let d_message st layer =
      String.concat ""
        (List.map
           (fun g ->
             let _, bw = operands g in
             let su_g = su.ands.(Hashtbl.find aidx g) in
             String.make 1
               (bit (Ot.receiver_round1 su_g.rcv_corr ~choice:(Option.get st.shares.(bw)))))
           layer)
    in
    (* My e-bits replying to the peer's d-bits: I am sender with messages
       (s, s XOR my a-share). *)
    let e_message st layer peer_ds =
      String.concat ""
        (List.map2
           (fun g d ->
             let aw, _ = operands g in
             let su_g = su.ands.(Hashtbl.find aidx g) in
             let a = Option.get st.shares.(aw) in
             let e0, e1 = Ot.sender_round2 su_g.snd_corr ~d ~m0:su_g.s ~m1:(su_g.s <> a) in
             Printf.sprintf "%c%c" (bit e0) (bit e1))
           layer peer_ds)
    in
    (* Fill in a layer's AND shares from the peer's e replies. *)
    let complete_layer st layer peer_es =
      let shares = Array.copy st.shares in
      List.iteri
        (fun i g ->
          let aw, bw = operands g in
          let su_g = su.ands.(Hashtbl.find aidx g) in
          let a = Option.get shares.(aw) and b = Option.get shares.(bw) in
          let e0, e1 = List.nth peer_es i in
          let cross = Ot.receiver_output su_g.rcv_corr ~choice:b ~e0 ~e1 in
          shares.(n_in + g) <- Some ((a && b) <> su_g.s <> cross))
        layer;
      { st with shares }
    in
    let step st ~round ~inbox =
      if st.halted then (st, [])
      else
        let fail () = ({ st with halted = true }, [ Machine.Abort_self ]) in
        if round = 1 then begin
          (* Split our inputs; send the peer its shares; install ours; fill
             dealer wires from the setup. *)
          let shares = Array.copy st.shares in
          List.iteri
            (fun i w -> shares.(w) <- Some (my_bits.(i) <> masks.(i)))
            my_wires;
          List.iter (fun (w, v) -> shares.(w) <- Some v) su.dealer_shares;
          let body = String.init (Array.length masks) (fun i -> bit masks.(i)) in
          ( { st with shares },
            [ Machine.Send (Wire.To peer, Wire.frame [ "inshares"; body ]) ] )
        end
        else begin
          (* 1. process what arrived *)
          let processed =
            if round = 2 then
              match find_peer_msg ~inbox ~tag:"inshares" with
              | Some body ->
                  let peer_wires =
                    List.filter
                      (fun w -> circuit.Boolcirc.input_owner.(w) = peer)
                      (List.init n_in (fun w -> w))
                  in
                  if String.length body <> List.length peer_wires then None
                  else begin
                    let shares = Array.copy st.shares in
                    List.iteri (fun i w -> shares.(w) <- Some (unbit body.[i])) peer_wires;
                    Some { st with shares }
                  end
              | None -> None
            else if round <= out_round then begin
              (* AND layer machinery: even rounds carry d's, odd carry e's *)
              let k = (round - 1) / 2 in
              (* layer index (1-based) whose traffic lands at this round *)
              if round mod 2 = 1 then
                (* round 2k+1: the peer's d-bits for layer k arrive *)
                match find_peer_msg ~inbox ~tag:"otd" with
                | Some body when String.length body = List.length layers.(k - 1) ->
                    Some
                      { st with
                        pending_d =
                          List.mapi (fun i g -> (g, unbit body.[i])) layers.(k - 1) }
                | _ -> None
              else
                (* round 2k+2 (k >= 1): the peer's e-bits for layer k arrive *)
                match find_peer_msg ~inbox ~tag:"ote" with
                | Some body when String.length body = 2 * List.length layers.(k - 1) ->
                    let es =
                      List.mapi
                        (fun i _ -> (unbit body.[2 * i], unbit body.[(2 * i) + 1]))
                        layers.(k - 1)
                    in
                    Some (complete_layer st layers.(k - 1) es)
                | _ -> None
            end
            else Some st (* the output exchange is validated when recombining *)
          in
          match processed with
          | None -> fail ()
          | Some st -> (
              let st = compute_local st in
              (* 2. send this round's message / output *)
              if round >= 2 && round <= out_round - 1 && round mod 2 = 0 then begin
                (* round 2k: send d-bits for layer k *)
                let k = round / 2 in
                if k <= n_layers then
                  ( st,
                    [ Machine.Send (Wire.To peer, Wire.frame [ "otd"; d_message st layers.(k - 1) ])
                    ] )
                else (st, [])
              end
              else if round >= 3 && round <= out_round - 1 then begin
                (* round 2k+1: reply with e-bits for layer k *)
                let k = (round - 1) / 2 in
                let ds = List.map snd st.pending_d in
                if List.length ds <> List.length layers.(k - 1) then fail ()
                else
                  ( st,
                    [ Machine.Send
                        (Wire.To peer, Wire.frame [ "ote"; e_message st layers.(k - 1) ds ]) ] )
              end
              else if round = out_round then
                let body =
                  String.init
                    (Array.length circuit.Boolcirc.outputs)
                    (fun i -> bit (Option.get st.shares.(circuit.Boolcirc.outputs.(i))))
                in
                (st, [ Machine.Send (Wire.To peer, Wire.frame [ "outshares"; body ]) ])
              else if round = out_round + 1 then
                (* recombine (recompute here; the processing branch above
                   only validated the message) *)
                match find_peer_msg ~inbox ~tag:"outshares" with
                | Some body ->
                    let outs =
                      Array.mapi
                        (fun i w -> Option.get st.shares.(w) <> unbit body.[i])
                        circuit.Boolcirc.outputs
                    in
                    ({ st with halted = true }, [ Machine.Output (decode_output outs) ])
                | None -> fail ()
              else (st, []))
        end
    in
    Machine.make
      { shares = Array.make (Boolcirc.n_wires circuit) None; pending_d = []; halted = false }
      step
  in
  Protocol.make ~name ~parties:2
    ~max_rounds:(out_round + 2)
    ~setup:(fun rng -> deal rng circuit)
    make_party
