(** Arithmetic circuits over GF(2^31-1): the computation language of the
    SPDZ-style substrate ({!Spdz}).

    Wires are numbered consecutively: wires [0 .. n_inputs-1] are the input
    wires (each owned by a party), and gate [g] defines wire [n_inputs + g].
    Outputs are a list of wires whose values form the (global) output
    vector. *)

module Field = Fair_field.Field

type wire = int

type gate =
  | Add of wire * wire
  | Sub of wire * wire
  | Mul of wire * wire
  | Mul_const of Field.t * wire
  | Add_const of Field.t * wire
  | Const of Field.t

type t = private {
  n_inputs : int;
  input_owner : int array;  (** 1-based party owning each input wire; 0 = dealer-supplied randomness (see {!Spdz}) *)
  gates : gate array;
  outputs : wire array;
}

val make : input_owner:int array -> gates:gate array -> outputs:wire array -> t
(** @raise Invalid_argument if a gate or output references an undefined or
    forward wire. *)

val n_wires : t -> int
val n_mults : t -> int
(** Number of [Mul] gates — the amount of preprocessing needed. *)

val eval : t -> Field.t array -> Field.t array
(** Plain (insecure) evaluation; the reference the secure evaluation is
    tested against.  @raise Invalid_argument on wrong input count. *)

(** {1 Stock circuits} *)

val identity2 : t
(** Two inputs (p1, p2), outputs [x1; x2] — the swap/exchange circuit: the
    global output reveals both inputs. *)

val product : n:int -> t
(** One input per party, output their product (computes AND on 0/1). *)

val sum : n:int -> t

val inner_product : n:int -> t
(** Parties 1..n each contribute two inputs; output Σ a_i·b_i — a circuit
    with many multiplication gates for exercising Beaver triples. *)
