(** The "artificial" protocol of Lemma 18: optimally γ-fair, yet not
    utility-balanced.

    Phase 1 is ΠOpt-nSFE's (a random holder i* receives the signed output).
    Then every party sends the bit 0 to every other party; the holder
    broadcasts the value if it received only 0s, and otherwise flips a fair
    coin — heads it broadcasts anyway, tails it sends the value *only* to
    the parties that did not send a 0.

    Against coalitions of size n−1 this behaves exactly like ΠOpt-nSFE
    (optimal).  But a single corrupted party that sends a 1 gets the value
    privately with probability 1/2 whenever the holder is honest, pushing
    the t = 1 utility to γ10/n + (n−1)/n·(γ10+γ11)/2 and the profile sum
    over ((3n−1)γ10 + (n+1)γ11)/2n — strictly above the balanced bound. *)

module Protocol = Fair_exec.Protocol
module Adversary = Fair_exec.Adversary
module Func = Fair_mpc.Func

val hybrid : Func.t -> Protocol.t
val hybrid_rounds : int

val lemma18_t1 : Adversary.t
(** The single-corruption attack from the proof of Lemma 18: abort if
    holding i*, otherwise send 1s and pocket the private delivery. *)
