(** The honest-majority "GMW-1/2" protocol of Lemma 17: fully secure
    (including fair) for t < ⌈n/2⌉ corruptions, but a total loss beyond.

    Phase 1 (hybrid): the trusted party evaluates f, draws a random pad s,
    hands every party the ciphertext y ⊕ PRG(s) together with a ⌈n/2⌉-out-
    of-n VSS package of s ({!Fair_sharing.Vss} — Shamir plus pairwise
    information-theoretic MACs, so wrong shares are rejected, not merely
    suspected).  Phase 2 publicly reconstructs s by a single broadcast
    round.

    A rushing coalition of any size sees all honest announcements before
    speaking, so it always learns y; it can additionally block the honest
    parties iff n − t < ⌈n/2⌉ + … — concretely iff t ≥ ⌈n/2⌉.  Hence the
    per-t utility profile γ11 / γ10 of Lemma 17, and for even n the profile
    sum exceeds the utility-balanced bound: the protocol is optimal for
    small coalitions yet not utility-balanced. *)

module Protocol = Fair_exec.Protocol
module Func = Fair_mpc.Func

val hybrid : Func.t -> Protocol.t
val hybrid_rounds : int

val reconstruction_threshold : n:int -> int
(** ⌊n/2⌋ + 1: shares needed to recover the pad. *)
