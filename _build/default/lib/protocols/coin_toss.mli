(** Blum coin tossing [4] — the subprotocol Π2 uses to decide who opens
    first, packaged standalone.

    Round 1: both parties commit to a random bit; round 2: both open;
    round 3: each party outputs the XOR (⊥ on a bad or missing opening).

    Binding commitments stop a rushing adversary from *flipping* the
    outcome, but not from vetoing it: it sees the honest opening first and
    can abort whenever the XOR displeases it.  That residual power is
    Cleve's impossibility [10] — the result the whole fairness literature,
    this paper included, starts from — and {!veto_adversary} exhibits it:
    conditioned on the honest party producing an output at all, the coin is
    completely biased. *)

module Protocol = Fair_exec.Protocol
module Adversary = Fair_exec.Adversary

val protocol : Protocol.t
(** Two parties; inputs are ignored (pass ""). *)

val rounds : int

val veto_adversary : target:int -> want:string -> Adversary.t
(** Corrupt p[target]; play honestly but withhold the final opening
    whenever the toss would not equal [want] ("0" or "1"). *)

type bias_stats = {
  trials : int;
  honest_zero : int;  (** honest party output "0" *)
  honest_one : int;
  honest_abort : int;
}

val measure_bias : adversary:Adversary.t -> trials:int -> seed:int -> bias_stats
(** Run the toss [trials] times against [adversary] and tabulate the honest
    party's outputs. *)
