(** ΠOpt-nSFE (Section 4.2 / Appendix B): the optimally γ-fair and
    utility-balanced multi-party SFE protocol.

    Phase 1 evaluates — via the secure-with-abort hybrid F^⊥_priv-sfe — the
    private-output function that hands a uniformly chosen party i* the value
    (y, Sign(y)) and every other party ⊥, all alongside the verification
    key.  Phase 2 is a single broadcast round: everyone announces its
    phase-1 value; a validly signed y is adopted, otherwise everyone aborts.

    A t-adversary learns y early only by having corrupted i* (probability
    t/n), whence Lemma 11's bound (t·γ10 + (n−t)·γ11)/n.  Signatures are
    Lamport one-time signatures ({!Fair_crypto.Signature.Lamport}). *)

module Protocol = Fair_exec.Protocol
module Func = Fair_mpc.Func

val hybrid : Func.t -> Protocol.t
(** For any n-party {!Func.t} (n = arity ≥ 2). *)

val hybrid_rounds : int

val priv_outputs : Func.t -> Fair_mpc.Ideal.per_party_outputs
(** The F^⊥_priv-sfe output assignment (exposed for the Lemma 18 protocol,
    which shares phase 1). *)
