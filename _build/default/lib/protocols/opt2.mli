(** ΠOpt-2SFE (Section 4.1): the optimally γ-fair two-party SFE protocol.

    Phase 1 evaluates — via an unfair, secure-with-abort substrate — the
    augmented function f' that outputs an authenticated 2-out-of-2 sharing
    (Appendix A) of y = f(x1, x2) together with a uniformly random index
    i ∈ {1, 2}.  If phase 1 aborts, the honest party substitutes the default
    input for its peer and evaluates f locally.

    Phase 2 reconstructs the sharing towards p_i first, then towards p_¬i;
    a bad or missing opening in the first reconstruction round again sends
    p_i to the local default evaluation, while one in the second round makes
    p_¬i output ⊥.

    Two instantiations of the substrate are provided:
    {!hybrid} runs phase 1 inside the ideal functionality F'^⊥_sfe (the
    model in which Theorem 3 is proven); {!spdz} replaces the hybrid with
    the {!Fair_mpc.Spdz} protocol for functions expressible as arithmetic
    circuits, demonstrating the composition step of the RPD framework.

    The best attacker's utility is (γ10 + γ11)/2 — Theorems 3 and 4. *)

module Protocol = Fair_exec.Protocol
module Func = Fair_mpc.Func

val hybrid : Func.t -> Protocol.t
(** Works for any two-party {!Func.t}. *)

val hybrid_biased : q:float -> Func.t -> Protocol.t
(** The designer-strategy family of the RPD attack-game experiment (E13):
    identical to {!hybrid} except that the reconstruct-first index is 1
    with probability [q] instead of 1/2.  [hybrid f = hybrid_biased ~q:0.5 f]
    up to the index distribution; the attack game's minimax sits at
    q = 1/2. *)

val hybrid_rounds : int
(** Total rounds of {!hybrid} (phase 1 dummy rounds + 2 reconstruction
    rounds). *)

val reconstruction_rounds : int
(** 2 — see Lemma 9. *)

val one_round_variant : Func.t -> Protocol.t
(** The straw-man with a single reconstruction round (both parties open
    simultaneously): used by Lemma 10's experiment to show it collapses to
    γ10 against a rushing adversary. *)

val spdz :
  name:string ->
  circuit:Fair_mpc.Circuit.t ->
  func:Func.t ->
  encode_input:(id:int -> string -> Fair_field.Field.t list) ->
  decode_output:(Fair_field.Field.t array -> string) ->
  Protocol.t
(** Composition-theorem instantiation: phase 1 is the SPDZ online protocol
    computing [circuit] without opening; the staged opening plan then opens
    a dealer-random index bit publicly, and the output — masked towards the
    indexed party — in two further stages.  [func] must agree with the
    circuit on the common input encoding (it is used for the local default
    evaluation on abort and for ground truth). *)
