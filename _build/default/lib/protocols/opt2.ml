module Protocol = Fair_exec.Protocol
module Machine = Fair_exec.Machine
module Wire = Fair_exec.Wire
module Rng = Fair_crypto.Rng
module Field = Fair_field.Field
module Auth_share = Fair_sharing.Auth_share
module Func = Fair_mpc.Func
module Ideal = Fair_mpc.Ideal
module Circuit = Fair_mpc.Circuit
module Spdz = Fair_mpc.Spdz

let reconstruction_rounds = 2
let hybrid_rounds = Ideal.dummy_rounds + reconstruction_rounds

(* f': an authenticated sharing of y plus a (possibly biased) index. *)
let augmented_outputs ?(q = 0.5) (func : Func.t) rng ~inputs =
  let y = Func.eval_exn func inputs in
  let s1, s2 = Auth_share.share rng (Field.encode_string y) in
  let index = if Rng.bernoulli rng q then 1 else 2 in
  [| Wire.frame [ Auth_share.share_to_string s1; string_of_int index ];
     Wire.frame [ Auth_share.share_to_string s2; string_of_int index ] |]

let local_default (func : Func.t) ~id ~input =
  let inputs =
    if id = 1 then [| input; func.Func.default_input |]
    else [| func.Func.default_input; input |]
  in
  Func.eval_exn func inputs

type phase2 = {
  share : Auth_share.share;
  index : int;
  received_round : int; (* round at which the F'-output arrived *)
}

type state = {
  phase2 : phase2 option;
  halted : bool;
}

let find_from ~inbox ~src =
  List.find_map (fun (s, payload) -> if s = src then Some payload else None) inbox

let hybrid_party (func : Func.t) ~rng:_ ~id ~n:_ ~input ~setup:_ =
  let peer = 3 - id in
  let step st ~round ~inbox =
    if st.halted then (st, [])
    else
      match st.phase2 with
      | None -> (
          if round = 1 then
            (st, [ Machine.Send (Wire.To Wire.functionality_id, Ideal.msg_input input) ])
          else
            match find_from ~inbox ~src:Wire.functionality_id with
            | Some payload -> (
                match Wire.unframe payload with
                | [ "abort" ] ->
                    (* Phase 1 aborted: evaluate locally on the default. *)
                    ({ st with halted = true },
                     [ Machine.Output (local_default func ~id ~input) ])
                | [ "output"; body ] -> (
                    match Wire.unframe body with
                    | [ share_s; index_s ] -> (
                        match int_of_string_opt index_s with
                        | Some index when index = 1 || index = 2 ->
                            let share = Auth_share.share_of_string share_s in
                            let st =
                              { st with phase2 = Some { share; index; received_round = round } }
                            in
                            (* Reconstruction towards p_index happens first:
                               the other party opens right away. *)
                            if index <> id then
                              ( st,
                                [ Machine.Send
                                    ( Wire.To peer,
                                      Wire.frame
                                        [ "opening";
                                          Auth_share.opening_to_string
                                            (Auth_share.opening_of_share share) ] ) ] )
                            else (st, [])
                        | _ -> ({ st with halted = true }, [ Machine.Abort_self ]))
                    | _ | (exception Invalid_argument _) ->
                        ({ st with halted = true }, [ Machine.Abort_self ]))
                | _ | (exception Invalid_argument _) -> (st, [])
                )
            | None -> (st, []))
      | Some ph ->
          if ph.index = id && round = ph.received_round + 1 then begin
            (* First reconstruction round: we are p_i, expecting the peer's
               opening. *)
            let opening =
              match find_from ~inbox ~src:peer with
              | Some payload -> (
                  match Wire.unframe payload with
                  | [ "opening"; body ] -> (
                      match Auth_share.opening_of_string body with
                      | o -> Some o
                      | exception Invalid_argument _ -> None)
                  | _ | (exception Invalid_argument _) -> None)
              | None -> None
            in
            match opening with
            | Some (summand, tag) -> (
                match
                  Auth_share.reconstruct ~mine:ph.share ~theirs_summand:summand ~theirs_tag:tag
                with
                | Ok secret ->
                    let y = Field.decode_string secret in
                    ( { st with halted = true },
                      [ Machine.Send
                          ( Wire.To peer,
                            Wire.frame
                              [ "opening";
                                Auth_share.opening_to_string (Auth_share.opening_of_share ph.share)
                              ] );
                        Machine.Output y ] )
                | Error _ ->
                    ({ st with halted = true },
                     [ Machine.Output (local_default func ~id ~input) ]))
            | None ->
                ({ st with halted = true }, [ Machine.Output (local_default func ~id ~input) ])
          end
          else if ph.index <> id && round = ph.received_round + 2 then begin
            (* Second reconstruction round: we are p_¬i. *)
            let opening =
              match find_from ~inbox ~src:peer with
              | Some payload -> (
                  match Wire.unframe payload with
                  | [ "opening"; body ] -> (
                      match Auth_share.opening_of_string body with
                      | o -> Some o
                      | exception Invalid_argument _ -> None)
                  | _ | (exception Invalid_argument _) -> None)
              | None -> None
            in
            match opening with
            | Some (summand, tag) -> (
                match
                  Auth_share.reconstruct ~mine:ph.share ~theirs_summand:summand ~theirs_tag:tag
                with
                | Ok secret ->
                    ({ st with halted = true }, [ Machine.Output (Field.decode_string secret) ])
                | Error _ -> ({ st with halted = true }, [ Machine.Abort_self ]))
            | None -> ({ st with halted = true }, [ Machine.Abort_self ])
          end
          else (st, [])
  in
  Machine.make { phase2 = None; halted = false } step

let hybrid_biased ~q func =
  if func.Func.arity <> 2 then invalid_arg "Opt2.hybrid: two-party functions only";
  if q < 0.0 || q > 1.0 then invalid_arg "Opt2.hybrid_biased: q outside [0,1]";
  Protocol.make
    ~name:(Printf.sprintf "opt2(q=%g):%s" q func.Func.name)
    ~parties:2 ~max_rounds:hybrid_rounds
    ~functionality:(Ideal.sfe_abort ~func ~outputs:(augmented_outputs ~q func) ())
    (hybrid_party func)

let hybrid func = hybrid_biased ~q:0.5 func

(* ---------------------------------------------------------------------- *)
(* Single-reconstruction-round straw-man (Lemma 10)                        *)
(* ---------------------------------------------------------------------- *)

let one_round_party (func : Func.t) ~rng:_ ~id ~n:_ ~input ~setup:_ =
  let peer = 3 - id in
  let step st ~round ~inbox =
    if st.halted then (st, [])
    else
      match st.phase2 with
      | None -> (
          if round = 1 then
            (st, [ Machine.Send (Wire.To Wire.functionality_id, Ideal.msg_input input) ])
          else
            match find_from ~inbox ~src:Wire.functionality_id with
            | Some payload -> (
                match Wire.unframe payload with
                | [ "abort" ] ->
                    ({ st with halted = true },
                     [ Machine.Output (local_default func ~id ~input) ])
                | [ "output"; body ] -> (
                    match Wire.unframe body with
                    | [ share_s; _index ] ->
                        let share = Auth_share.share_of_string share_s in
                        (* Both parties open simultaneously. *)
                        ( { st with phase2 = Some { share; index = id; received_round = round } },
                          [ Machine.Send
                              ( Wire.To peer,
                                Wire.frame
                                  [ "opening";
                                    Auth_share.opening_to_string (Auth_share.opening_of_share share)
                                  ] ) ] )
                    | _ | (exception Invalid_argument _) ->
                        ({ st with halted = true }, [ Machine.Abort_self ]))
                | _ | (exception Invalid_argument _) -> (st, []))
            | None -> (st, []))
      | Some ph ->
          if round = ph.received_round + 1 then
            let opening =
              match find_from ~inbox ~src:peer with
              | Some payload -> (
                  match Wire.unframe payload with
                  | [ "opening"; body ] -> (
                      match Auth_share.opening_of_string body with
                      | o -> Some o
                      | exception Invalid_argument _ -> None)
                  | _ | (exception Invalid_argument _) -> None)
              | None -> None
            in
            match opening with
            | Some (summand, tag) -> (
                match
                  Auth_share.reconstruct ~mine:ph.share ~theirs_summand:summand ~theirs_tag:tag
                with
                | Ok secret ->
                    ({ st with halted = true }, [ Machine.Output (Field.decode_string secret) ])
                | Error _ -> ({ st with halted = true }, [ Machine.Abort_self ]))
            | None -> ({ st with halted = true }, [ Machine.Abort_self ])
          else (st, [])
  in
  Machine.make { phase2 = None; halted = false } step

let one_round_variant func =
  if func.Func.arity <> 2 then invalid_arg "Opt2.one_round_variant: two-party functions only";
  Protocol.make
    ~name:("opt2-1round:" ^ func.Func.name)
    ~parties:2 ~max_rounds:(Ideal.dummy_rounds + 1)
    ~functionality:(Ideal.sfe_abort ~func ~outputs:(augmented_outputs func) ())
    (one_round_party func)

(* ---------------------------------------------------------------------- *)
(* SPDZ instantiation (composition theorem)                                *)
(* ---------------------------------------------------------------------- *)

let spdz ~name ~circuit ~(func : Func.t) ~encode_input ~decode_output =
  let n_in = circuit.Circuit.n_inputs in
  let n_out = Array.length circuit.Circuit.outputs in
  (* Augment: dealer wires [index; mask1 per output; mask2 per output]. *)
  let owners =
    Array.append circuit.Circuit.input_owner (Array.make (1 + (2 * n_out)) 0)
  in
  let index_wire = n_in in
  let mask_wire party k = n_in + 1 + ((party - 1) * n_out) + k in
  (* Gates shift: old gate wire w >= n_in moves to w + 1 + 2*n_out. *)
  let shift w = if w < n_in then w else w + 1 + (2 * n_out) in
  let old_gates =
    Array.map
      (fun g ->
        match g with
        | Circuit.Add (a, b) -> Circuit.Add (shift a, shift b)
        | Circuit.Sub (a, b) -> Circuit.Sub (shift a, shift b)
        | Circuit.Mul (a, b) -> Circuit.Mul (shift a, shift b)
        | Circuit.Mul_const (c, a) -> Circuit.Mul_const (c, shift a)
        | Circuit.Add_const (c, a) -> Circuit.Add_const (c, shift a)
        | Circuit.Const c -> Circuit.Const c)
      circuit.Circuit.gates
  in
  let n_old_gates = Array.length old_gates in
  let masked_gate_base = n_in + 1 + (2 * n_out) + n_old_gates in
  let masked_gates =
    Array.init (2 * n_out) (fun k ->
        let party = (k / n_out) + 1 in
        let out = k mod n_out in
        Circuit.Add (shift circuit.Circuit.outputs.(out), mask_wire party out))
  in
  let gates = Array.append old_gates masked_gates in
  let masked_out party k = masked_gate_base + ((party - 1) * n_out) + k in
  let outputs =
    Array.init ((2 * n_out) + 1) (fun i ->
        if i = 0 then index_wire
        else
          let k = i - 1 in
          masked_out ((k / n_out) + 1) (k mod n_out))
  in
  let aug = Circuit.make ~input_owner:owners ~gates ~outputs in
  let reveal_to =
    List.concat_map
      (fun party -> List.init n_out (fun k -> (mask_wire party k, party)))
      [ 1; 2 ]
  in
  let indexed_party opened =
    match List.assoc_opt index_wire opened with
    | Some v -> Some (1 + (Field.to_int v mod 2))
    | None -> None
  in
  let plan ~stage_index ~opened =
    match stage_index with
    | 0 -> Some [ index_wire ]
    | 1 | 2 -> (
        match indexed_party opened with
        | Some i ->
            let party = if stage_index = 1 then i else 3 - i in
            Some (List.init n_out (fun k -> masked_out party k))
        | None -> None)
    | _ -> None
  in
  let unmask ~id ~opened ~clears =
    let values =
      List.init n_out (fun k ->
          match List.assoc_opt (masked_out id k) opened with
          | Some masked -> (
              match List.assoc_opt (mask_wire id k) clears with
              | Some m -> Some (Field.sub masked m)
              | None -> None)
          | None -> None)
    in
    if List.for_all Option.is_some values then
      Some (decode_output (Array.of_list (List.map Option.get values)))
    else None
  in
  let output_of ~id ~opened ~clears =
    match unmask ~id ~opened ~clears with
    | Some y -> y
    | None -> local_default func ~id ~input:"" (* unreachable on honest completion *)
  in
  let on_abort ~id ~input ~opened ~clears =
    match unmask ~id ~opened ~clears with
    | Some y -> Some y (* our reconstruction already completed *)
    | None -> (
        match indexed_party opened with
        | None -> Some (local_default func ~id ~input) (* phase-1-style abort *)
        | Some i ->
            if i = id then Some (local_default func ~id ~input)
              (* first reconstruction failed towards us *)
            else None (* we are p_¬i and the second reconstruction failed: ⊥ *))
  in
  Spdz.protocol ~name ~circuit:aug ~n:2 ~encode_input ~reveal_to ~plan ~output_of ~on_abort
    ~max_stages:4
