(** The two contract-signing protocols of the paper's introduction.

    Both compute {!Fair_mpc.Func.contract}: each party's input models its
    locally signed contract half, and the (global) output is the doubly
    signed contract.

    {!pi1} (Π1): the parties exchange commitments to their signed halves;
    then p1 opens to p2, then p2 opens to p1.  A corrupted p2 can always
    withhold the last opening after learning p1's half — the best attacker
    gets γ10 outright.

    {!pi2} (Π2): after the commitment exchange the parties run Blum coin
    tossing (commit–exchange–open) to decide who opens first.  The binding
    commitments leave a rushing adversary only the abort option, so it ends
    up second — able to provoke E10 — with probability exactly 1/2, and the
    best attacker gets (γ10 + γ11)/2: Π2 is "twice as fair" as Π1. *)

module Protocol = Fair_exec.Protocol
module Adversary = Fair_exec.Adversary

val func : Fair_mpc.Func.t
(** {!Fair_mpc.Func.contract}. *)

val pi1 : Protocol.t
val pi2 : Protocol.t

val pi1_rounds : int
val pi2_rounds : int

val zoo : Adversary.t list
(** Strategies relevant to the two protocols: corrupting either side and
    aborting at each round, greedy, plus baselines. *)
