(** Π̃, the "leaky" AND protocol of Section 5 / Appendix C.5: the separating
    example showing that 1/p-security (even with full privacy as two
    separate conditions) does not imply utility-based fairness.

    - Round 1: p2 sends a bit to p1 — an honest p2 sends 0.
    - Round 2: if p2 sent 1, p1 tosses a coin with Pr[C=1] = 1/4 and, on
      C = 1, sends its input x1 to p2 in the clear.
    - Then the parties run the standard 1/4-secure Gordon–Katz protocol for
      AND ({!Gordon_katz} with p = 4, offset 2).

    Lemma 27: the protocol is still 1/2-secure and fully private in the
    sense of [18].  Lemma 26: it does not realize F^∧,$_sfe — the leak path
    hands p1's input to a corrupted p2 with probability exactly 1/4.  The
    experiments reproduce the leak probability and the real-world statistics
    Pr[real_{Z1} = 1] = Pr[real_{Z2} = 1] = 1/4 used in Lemma 26's proof. *)

module Protocol = Fair_exec.Protocol
module Adversary = Fair_exec.Adversary

val protocol : Protocol.t
val variant : Gordon_katz.variant
(** The embedded 1/4-secure AND instance. *)

val total_rounds : int

val leak_adversary : Adversary.t
(** Corrupt p2, send the 1-bit, follow the rest honestly, and claim p1's
    input if it leaks.  The claim records the *input* (not the output):
    experiment E12 reads the leak probability from the claim rate. *)

type z_result = { z1_accepts : bool; z2_accepts : bool }

val run_z_environments : seed:int -> z_result
(** One trial of the Z1/Z2 environments from the proof of Lemma 26: x1
    uniform, p2 corrupted sending a 1-bit, x2 = 0 played honestly;
    Z2 accepts iff a non-empty first-round reply arrives, Z1 iff that reply
    equals x1 and the final output is 0. *)
