lib/protocols/gmw_half.mli: Fair_exec Fair_mpc
