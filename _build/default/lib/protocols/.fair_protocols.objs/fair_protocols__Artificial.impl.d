lib/protocols/artificial.ml: Fair_crypto Fair_exec Fair_mpc List Optn Printf
