lib/protocols/gordon_katz.mli: Fair_crypto Fair_exec Fair_mpc Fairness
