lib/protocols/leaky_and.mli: Fair_exec Gordon_katz
