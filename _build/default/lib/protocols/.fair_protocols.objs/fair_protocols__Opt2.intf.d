lib/protocols/opt2.mli: Fair_exec Fair_field Fair_mpc
