lib/protocols/contract.mli: Fair_exec Fair_mpc
