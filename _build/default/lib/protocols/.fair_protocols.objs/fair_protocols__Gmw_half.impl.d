lib/protocols/gmw_half.ml: Array Char Fair_crypto Fair_exec Fair_field Fair_mpc Fair_sharing List Printf String
