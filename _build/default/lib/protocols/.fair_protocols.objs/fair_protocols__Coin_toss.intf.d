lib/protocols/coin_toss.mli: Fair_exec
