lib/protocols/artificial.mli: Fair_exec Fair_mpc
