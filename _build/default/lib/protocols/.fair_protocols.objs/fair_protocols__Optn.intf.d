lib/protocols/optn.mli: Fair_exec Fair_mpc
