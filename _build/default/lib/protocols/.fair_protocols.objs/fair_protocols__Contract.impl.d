lib/protocols/contract.ml: Adversaries Fair_crypto Fair_exec Fair_mpc List String
