lib/protocols/adversaries.mli: Fair_crypto Fair_exec Fair_mpc
