lib/protocols/adversaries.ml: Array Fair_crypto Fair_exec Fair_mpc Hashtbl List Printf String
