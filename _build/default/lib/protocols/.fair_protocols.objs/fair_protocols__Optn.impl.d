lib/protocols/optn.ml: Array Fair_crypto Fair_exec Fair_mpc Lazy List Printf
