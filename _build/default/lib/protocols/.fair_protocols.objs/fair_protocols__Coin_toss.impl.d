lib/protocols/coin_toss.ml: Fair_crypto Fair_exec List Printf
