lib/protocols/leaky_and.ml: Fair_crypto Fair_exec Fair_mpc Gordon_katz List
