lib/protocols/opt2.ml: Array Fair_crypto Fair_exec Fair_field Fair_mpc Fair_sharing List Option Printf
