lib/protocols/gordon_katz.ml: Adversaries Array Char Fair_crypto Fair_exec Fair_mpc Fairness List Printf String
