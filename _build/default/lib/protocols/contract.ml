module Protocol = Fair_exec.Protocol
module Adversary = Fair_exec.Adversary
module Machine = Fair_exec.Machine
module Wire = Fair_exec.Wire
module Rng = Fair_crypto.Rng
module Commit = Fair_crypto.Commit
module Func = Fair_mpc.Func

let func = Func.contract

let pi1_rounds = 4
let pi2_rounds = 6

let peer id = 3 - id

let find_msg ~inbox ~src ~tag =
  List.find_map
    (fun (s, payload) ->
      if s = src then
        match Wire.unframe payload with
        | [ t; body ] when String.equal t tag -> Some body
        | _ | (exception Invalid_argument _) -> None
      else None)
    inbox

let contract_output ~id ~own ~theirs =
  if id = 1 then Func.eval_exn func [| own; theirs |] else Func.eval_exn func [| theirs; own |]

(* ---------------------------------------------------------------------- *)
(* Π1: commit, then p1 opens, then p2 opens.                               *)
(* ---------------------------------------------------------------------- *)

type pi1_state = { peer_commitment : string option }

let pi1_party ~rng ~id ~n:_ ~input ~setup:_ =
  let my_commitment, my_opening = Commit.commit (Rng.split rng ~label:"commit") input in
  let step st ~round ~inbox =
    let remember st =
      match find_msg ~inbox ~src:(peer id) ~tag:"commit" with
      | Some c -> { peer_commitment = Some c }
      | None -> st
    in
    let st = remember st in
    match (id, round) with
    | _, 1 ->
        ( st,
          [ Machine.Send
              (Wire.To (peer id), Wire.frame [ "commit"; Commit.commitment_to_string my_commitment ])
          ] )
    | 1, 2 ->
        (* p1 opens first *)
        ( st,
          [ Machine.Send
              (Wire.To 2, Wire.frame [ "open"; Commit.opening_to_string my_opening ]) ] )
    | 2, 3 -> (
        (* p2 verifies p1's opening; if valid, opens back and outputs *)
        match (find_msg ~inbox ~src:1 ~tag:"open", st.peer_commitment) with
        | Some body, Some c -> (
            match Commit.opening_of_string body with
            | opening when Commit.verify (Commit.commitment_of_string c) opening ->
                ( st,
                  [ Machine.Send
                      (Wire.To 1, Wire.frame [ "open"; Commit.opening_to_string my_opening ]);
                    Machine.Output
                      (contract_output ~id ~own:input ~theirs:(Commit.message opening)) ] )
            | _ -> (st, [ Machine.Abort_self ])
            | exception Invalid_argument _ -> (st, [ Machine.Abort_self ]))
        | _ -> (st, [ Machine.Abort_self ]))
    | 1, 4 -> (
        match (find_msg ~inbox ~src:2 ~tag:"open", st.peer_commitment) with
        | Some body, Some c -> (
            match Commit.opening_of_string body with
            | opening when Commit.verify (Commit.commitment_of_string c) opening ->
                (st, [ Machine.Output (contract_output ~id ~own:input ~theirs:(Commit.message opening)) ])
            | _ -> (st, [ Machine.Abort_self ])
            | exception Invalid_argument _ -> (st, [ Machine.Abort_self ]))
        | _ -> (st, [ Machine.Abort_self ]))
    | _ -> (st, [])
  in
  Machine.make { peer_commitment = None } step

let pi1 = Protocol.make ~name:"pi1-contract" ~parties:2 ~max_rounds:pi1_rounds pi1_party

(* ---------------------------------------------------------------------- *)
(* Π2: commit; coin-toss (commit/open) decides who opens first.            *)
(* ---------------------------------------------------------------------- *)

type pi2_state = {
  peer_ccommit : string option; (* contract commitment *)
  peer_dcommit : string option; (* coin commitment *)
  first_opener : int option;
  theirs : string option; (* peer's contract half, once opened *)
}

let pi2_party ~rng ~id ~n:_ ~input ~setup:_ =
  let rng = Rng.split rng ~label:"pi2" in
  let my_ccommit, my_copen = Commit.commit rng input in
  let my_bit = if Rng.bool rng then "1" else "0" in
  let my_dcommit, my_dopen = Commit.commit rng my_bit in
  let step st ~round ~inbox =
    let st =
      let st =
        match find_msg ~inbox ~src:(peer id) ~tag:"ccommit" with
        | Some c -> { st with peer_ccommit = Some c }
        | None -> st
      in
      match find_msg ~inbox ~src:(peer id) ~tag:"dcommit" with
      | Some c -> { st with peer_dcommit = Some c }
      | None -> st
    in
    match round with
    | 1 ->
        ( st,
          [ Machine.Send
              (Wire.To (peer id), Wire.frame [ "ccommit"; Commit.commitment_to_string my_ccommit ])
          ] )
    | 2 ->
        ( st,
          [ Machine.Send
              (Wire.To (peer id), Wire.frame [ "dcommit"; Commit.commitment_to_string my_dcommit ])
          ] )
    | 3 ->
        ( st,
          [ Machine.Send (Wire.To (peer id), Wire.frame [ "dopen"; Commit.opening_to_string my_dopen ])
          ] )
    | 4 -> (
        (* verify peer's coin opening, compute b, maybe open first *)
        match (find_msg ~inbox ~src:(peer id) ~tag:"dopen", st.peer_dcommit) with
        | Some body, Some c -> (
            match Commit.opening_of_string body with
            | opening
              when Commit.verify (Commit.commitment_of_string c) opening
                   && List.mem (Commit.message opening) [ "0"; "1" ] ->
                let b =
                  (int_of_string my_bit + int_of_string (Commit.message opening)) mod 2
                in
                let first = 1 + b in
                let st = { st with first_opener = Some first } in
                if first = id then
                  ( st,
                    [ Machine.Send
                        (Wire.To (peer id), Wire.frame [ "copen"; Commit.opening_to_string my_copen ])
                    ] )
                else (st, [])
            | _ -> (st, [ Machine.Abort_self ])
            | exception Invalid_argument _ -> (st, [ Machine.Abort_self ]))
        | _ -> (st, [ Machine.Abort_self ]))
    | 5 -> (
        match st.first_opener with
        | Some first when first <> id -> (
            (* we are second: verify the first opener's contract opening,
               reply with ours, output *)
            match (find_msg ~inbox ~src:(peer id) ~tag:"copen", st.peer_ccommit) with
            | Some body, Some c -> (
                match Commit.opening_of_string body with
                | opening when Commit.verify (Commit.commitment_of_string c) opening ->
                    ( { st with theirs = Some (Commit.message opening) },
                      [ Machine.Send
                          (Wire.To (peer id), Wire.frame [ "copen"; Commit.opening_to_string my_copen ]);
                        Machine.Output
                          (contract_output ~id ~own:input ~theirs:(Commit.message opening)) ] )
                | _ -> (st, [ Machine.Abort_self ])
                | exception Invalid_argument _ -> (st, [ Machine.Abort_self ]))
            | _ -> (st, [ Machine.Abort_self ]))
        | _ -> (st, []))
    | 6 -> (
        match st.first_opener with
        | Some first when first = id -> (
            match (find_msg ~inbox ~src:(peer id) ~tag:"copen", st.peer_ccommit) with
            | Some body, Some c -> (
                match Commit.opening_of_string body with
                | opening when Commit.verify (Commit.commitment_of_string c) opening ->
                    ( st,
                      [ Machine.Output
                          (contract_output ~id ~own:input ~theirs:(Commit.message opening)) ] )
                | _ -> (st, [ Machine.Abort_self ])
                | exception Invalid_argument _ -> (st, [ Machine.Abort_self ]))
            | _ -> (st, [ Machine.Abort_self ]))
        | _ -> (st, []))
    | _ -> (st, [])
  in
  Machine.make
    { peer_ccommit = None; peer_dcommit = None; first_opener = None; theirs = None }
    step

let pi2 = Protocol.make ~name:"pi2-contract" ~parties:2 ~max_rounds:pi2_rounds pi2_party

let zoo =
  let specs = [ Adversaries.Fixed [ 1 ]; Adversaries.Fixed [ 2 ]; Adversaries.Random_party ] in
  Adversary.passive
  :: List.concat_map
       (fun spec ->
         Adversaries.greedy spec :: Adversaries.semi_honest spec :: Adversaries.silent spec
         :: List.map (fun r -> Adversaries.abort_at ~round:r spec) [ 1; 2; 3; 4; 5; 6 ])
       specs
