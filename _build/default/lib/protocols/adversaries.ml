module Adversary = Fair_exec.Adversary
module Machine = Fair_exec.Machine
module Protocol = Fair_exec.Protocol
module Wire = Fair_exec.Wire
module Rng = Fair_crypto.Rng

type corrupt_spec =
  | Nobody
  | Fixed of int list
  | Random_party
  | Random_subset of int
  | All_but of int
  | Everyone

let spec_to_string = function
  | Nobody -> "none"
  | Fixed l -> "fixed{" ^ String.concat "," (List.map string_of_int l) ^ "}"
  | Random_party -> "random1"
  | Random_subset t -> Printf.sprintf "random%d" t
  | All_but i -> Printf.sprintf "all-but-%d" i
  | Everyone -> "all"

let choose spec rng ~n =
  match spec with
  | Nobody -> []
  | Fixed l -> l
  | Random_party -> [ 1 + Rng.int rng n ]
  | Random_subset t ->
      if t > n then invalid_arg "Adversaries.choose: subset too large";
      let ids = Array.init n (fun i -> i + 1) in
      Rng.shuffle rng ids;
      Array.to_list (Array.sub ids 0 t)
  | All_but i -> List.filter (fun j -> j <> i) (List.init n (fun j -> j + 1))
  | Everyone -> List.init n (fun j -> j + 1)

(* --------------------------------------------------------------------- *)
(* Shared machinery: drive the corrupted parties' honest machines.        *)
(* --------------------------------------------------------------------- *)

type driver = {
  mutable machines : (int * Machine.t) list;
  mutable done_ids : int list; (* machines that output or aborted *)
}

let new_driver () = { machines = []; done_ids = [] }

(* Adopt machines freshly handed over by the engine. *)
let adopt driver (view : Adversary.view) =
  List.iter
    (fun (c : Adversary.corrupted) ->
      if (not (List.mem_assoc c.Adversary.id driver.machines))
         && not (List.mem c.Adversary.id driver.done_ids)
      then driver.machines <- (c.Adversary.id, c.Adversary.machine) :: driver.machines)
    view.Adversary.corrupted

(* Step every live corrupted machine on its inbox; returns the send actions
   (as decision sends) and any outputs the machines produced. *)
let step_machines driver (view : Adversary.view) =
  let sends = ref [] and outputs = ref [] in
  driver.machines <-
    List.filter_map
      (fun (id, m) ->
        let inbox = try List.assoc id view.Adversary.inbox with Not_found -> [] in
        let m', actions = m.Machine.step ~round:view.Adversary.round ~inbox in
        let finished = ref false in
        List.iter
          (fun a ->
            match a with
            | Machine.Send (dst, payload) -> sends := (id, dst, payload) :: !sends
            | Machine.Output v ->
                outputs := v :: !outputs;
                finished := true
            | Machine.Abort_self -> finished := true)
          actions;
        if !finished then begin
          driver.done_ids <- id :: driver.done_ids;
          None
        end
        else Some (id, m'))
      driver.machines;
  (List.rev !sends, List.rev !outputs)

(* Simulate the corrupted coalition forward against a silent residual
   network: initial inboxes are given, afterwards only coalition-internal
   traffic flows.  Returns the first output any coalition machine produces
   that is not in [boring] — the default-fallback evaluations the paper's
   A1 strategy explicitly discounts ("checks whether the output is the
   default output"). *)
let coalition_probe ?(boring = []) machines ~initial ~start_round ~max_rounds =
  let rec go machines inboxes round fuel =
    if fuel <= 0 || machines = [] then None
    else begin
      let next_inboxes = Hashtbl.create 8 in
      let push id msg =
        Hashtbl.replace next_inboxes id (msg :: (try Hashtbl.find next_inboxes id with Not_found -> []))
      in
      let output = ref None in
      let machines' =
        List.filter_map
          (fun (id, m) ->
            let inbox = try Hashtbl.find inboxes id with Not_found -> [] in
            let inbox = List.rev inbox in
            let m', actions = m.Machine.step ~round ~inbox in
            let finished = ref false in
            List.iter
              (fun a ->
                match a with
                | Machine.Output v ->
                    if !output = None && not (List.mem v boring) then output := Some v
                | Machine.Abort_self -> finished := true
                | Machine.Send (dst, payload) -> (
                    match dst with
                    | Wire.To p ->
                        if List.mem_assoc p machines then push p (id, payload)
                    | Wire.Broadcast ->
                        List.iter (fun (p, _) -> push p (id, payload)) machines))
              actions;
            if !finished then None else Some (id, m'))
          machines
      in
      match !output with
      | Some v -> Some v
      | None -> go machines' next_inboxes (round + 1) (fuel - 1)
    end
  in
  let init = Hashtbl.create 8 in
  List.iter (fun (id, msgs) -> Hashtbl.replace init id (List.rev msgs)) initial;
  go machines init start_round max_rounds

(* Inboxes the coalition would see next round if the residual network's
   round-r messages (the rushed ones) were delivered, together with the
   coalition's own round-r traffic. *)
let next_inboxes_after (view : Adversary.view) sends coalition =
  let tbl = Hashtbl.create 8 in
  let push id msg = Hashtbl.replace tbl id (msg :: (try Hashtbl.find tbl id with Not_found -> [])) in
  List.iter
    (fun (env : Wire.envelope) ->
      match env.Wire.dst with
      | Wire.To p -> if List.mem p coalition then push p (env.Wire.src, env.Wire.payload)
      | Wire.Broadcast -> List.iter (fun p -> push p (env.Wire.src, env.Wire.payload)) coalition)
    view.Adversary.rushed;
  List.iter
    (fun (src, dst, payload) ->
      match dst with
      | Wire.To p -> if List.mem p coalition then push p (src, payload)
      | Wire.Broadcast -> List.iter (fun p -> push p (src, payload)) coalition)
    sends;
  List.map (fun id -> (id, List.rev (try Hashtbl.find tbl id with Not_found -> []))) coalition

(* --------------------------------------------------------------------- *)
(* Strategies                                                             *)
(* --------------------------------------------------------------------- *)

let semi_honest spec =
  Adversary.make ~name:("semi-honest:" ^ spec_to_string spec) (fun rng ~protocol ->
      let initial = choose spec rng ~n:protocol.Protocol.parties in
      let driver = new_driver () in
      let step view =
        adopt driver view;
        let sends, outputs = step_machines driver view in
        { Adversary.send = sends;
          corrupt = [];
          claim_learned = (match outputs with v :: _ -> Some v | [] -> None) }
      in
      { Adversary.initial; step })

let silent spec =
  Adversary.make ~name:("silent:" ^ spec_to_string spec) (fun rng ~protocol ->
      let initial = choose spec rng ~n:protocol.Protocol.parties in
      { Adversary.initial; step = (fun _ -> Adversary.silent_decision) })

let abort_at ~round spec =
  Adversary.make
    ~name:(Printf.sprintf "abort@%d:%s" round (spec_to_string spec))
    (fun rng ~protocol ->
      let initial = choose spec rng ~n:protocol.Protocol.parties in
      let driver = new_driver () in
      let max_rounds = protocol.Protocol.max_rounds in
      let claimed = ref false in
      let step (view : Adversary.view) =
        adopt driver view;
        let sends, outputs = step_machines driver view in
        if view.Adversary.round < round then
          { Adversary.send = sends;
            corrupt = [];
            claim_learned = (match outputs with v :: _ -> Some v | [] -> None) }
        else begin
          (* Gone silent: see what the retained machines can still extract
             from everything received so far (including this round's rushed
             messages). *)
          let claim =
            if !claimed then None
            else begin
              let coalition = List.map fst driver.machines in
              let initial_inboxes = next_inboxes_after view [] coalition in
              match outputs with
              | v :: _ -> Some v
              | [] ->
                  coalition_probe driver.machines ~initial:initial_inboxes
                    ~start_round:(view.Adversary.round + 1) ~max_rounds
            end
          in
          if claim <> None then claimed := true;
          { Adversary.send = []; corrupt = []; claim_learned = claim }
        end
      in
      { Adversary.initial; step })

let abort_via_functionality ~round spec =
  Adversary.make
    ~name:(Printf.sprintf "abort-F@%d:%s" round (spec_to_string spec))
    (fun rng ~protocol ->
      let initial = choose spec rng ~n:protocol.Protocol.parties in
      let driver = new_driver () in
      let step (view : Adversary.view) =
        adopt driver view;
        let sends, outputs = step_machines driver view in
        if view.Adversary.round < round then
          { Adversary.send = sends;
            corrupt = [];
            claim_learned = (match outputs with v :: _ -> Some v | [] -> None) }
        else if view.Adversary.round = round then
          (* Abort the phase-1 subprotocol: in the hybrid model that is the
             (abort) message to the trusted party. *)
          match driver.machines with
          | (id, _) :: _ ->
              { Adversary.send = [ (id, Wire.To Wire.functionality_id, Wire.frame [ "abort" ]) ];
                corrupt = [];
                claim_learned = None }
          | [] -> Adversary.silent_decision
        else Adversary.silent_decision
      in
      { Adversary.initial; step })

let greedy ?func spec =
  Adversary.make ~name:("greedy:" ^ spec_to_string spec) (fun rng ~protocol ->
      let initial = choose spec rng ~n:protocol.Protocol.parties in
      let driver = new_driver () in
      let max_rounds = protocol.Protocol.max_rounds in
      let aborted = ref false in
      (* Evaluations the coalition can compute on its own (the honest
         parties' inputs replaced by the default): a probe yielding one of
         these is a fallback, not a leak — the paper's A1 discounts it. *)
      let boring_of (view : Adversary.view) =
        match func with
        | None -> []
        | Some (f : Fair_mpc.Func.t) ->
            if List.length view.Adversary.corrupted = 0 then []
            else begin
              let inputs = Array.make f.Fair_mpc.Func.arity f.Fair_mpc.Func.default_input in
              List.iter
                (fun (c : Adversary.corrupted) ->
                  if c.Adversary.id >= 1 && c.Adversary.id <= Array.length inputs then
                    inputs.(c.Adversary.id - 1) <- c.Adversary.input)
                view.Adversary.corrupted;
              match Fair_mpc.Func.eval_exn f inputs with
              | v -> [ v ]
              | exception Invalid_argument _ -> []
            end
      in
      let step (view : Adversary.view) =
        adopt driver view;
        if !aborted then Adversary.silent_decision
        else begin
          let boring = boring_of view in
          let sends, outputs = step_machines driver view in
          match List.filter (fun v -> not (List.mem v boring)) outputs with
          | v :: _ ->
              (* A corrupted machine terminated with the output in hand:
                 claim it and stop cooperating. *)
              aborted := true;
              { Adversary.send = []; corrupt = []; claim_learned = Some v }
          | [] -> (
              let coalition = List.map fst driver.machines in
              let initial_inboxes = next_inboxes_after view sends coalition in
              match
                coalition_probe ~boring driver.machines ~initial:initial_inboxes
                  ~start_round:(view.Adversary.round + 1) ~max_rounds
              with
              | Some v ->
                  (* The coalition already holds the output: abort before
                     releasing this round's messages (Lemma 7's strategy). *)
                  aborted := true;
                  { Adversary.send = []; corrupt = []; claim_learned = Some v }
              | None ->
                  { Adversary.send = sends; corrupt = []; claim_learned = None })
        end
      in
      { Adversary.initial; step })

(* Adaptive corruption: start with one uniformly chosen party and corrupt a
   further uniform honest party each round until the budget is spent,
   inspecting every new victim's state (input, setup, retained machine) for
   the function output via a coalition probe — the "try to corrupt i*"
   strategy discussed in the proof of Lemma 11.  Claims and aborts exactly
   like {!greedy} once the coalition holds the output. *)
let adaptive_hunter ?func ~budget () =
  Adversary.make ~name:(Printf.sprintf "adaptive-hunter-%d" budget) (fun rng ~protocol ->
      let n = protocol.Protocol.parties in
      let initial = choose Random_party rng ~n in
      let driver = new_driver () in
      let max_rounds = protocol.Protocol.max_rounds in
      let aborted = ref false in
      let boring_of (view : Adversary.view) =
        match func with
        | None -> []
        | Some (f : Fair_mpc.Func.t) ->
            let inputs = Array.make f.Fair_mpc.Func.arity f.Fair_mpc.Func.default_input in
            List.iter
              (fun (c : Adversary.corrupted) ->
                if c.Adversary.id >= 1 && c.Adversary.id <= Array.length inputs then
                  inputs.(c.Adversary.id - 1) <- c.Adversary.input)
              view.Adversary.corrupted;
            (match Fair_mpc.Func.eval_exn f inputs with
            | v -> [ v ]
            | exception Invalid_argument _ -> [])
      in
      let step (view : Adversary.view) =
        adopt driver view;
        if !aborted then Adversary.silent_decision
        else begin
          let boring = boring_of view in
          let sends, outputs = step_machines driver view in
          let corrupted_now = List.map (fun (c : Adversary.corrupted) -> c.Adversary.id) view.Adversary.corrupted in
          let next_victim =
            if List.length corrupted_now >= budget then []
            else
              match
                List.filter (fun j -> not (List.mem j corrupted_now)) (List.init n (fun j -> j + 1))
              with
              | [] -> []
              | honest -> [ Rng.pick rng honest ]
          in
          match List.filter (fun v -> not (List.mem v boring)) outputs with
          | v :: _ ->
              aborted := true;
              { Adversary.send = []; corrupt = []; claim_learned = Some v }
          | [] -> (
              let coalition = List.map fst driver.machines in
              let initial_inboxes = next_inboxes_after view sends coalition in
              match
                coalition_probe ~boring driver.machines ~initial:initial_inboxes
                  ~start_round:(view.Adversary.round + 1) ~max_rounds
              with
              | Some v ->
                  aborted := true;
                  { Adversary.send = []; corrupt = []; claim_learned = Some v }
              | None -> { Adversary.send = sends; corrupt = next_victim; claim_learned = None })
        end
      in
      { Adversary.initial; step })

(* Hybrid-protocol strategy: use the trusted party's interfaces directly —
   request the corrupted parties' outputs, and abort the functionality the
   moment a function output reaches the coalition (the optimal attack on
   the dummy unfair-SFE protocol). *)
let grab_and_abort spec =
  Adversary.make ~name:("grab-and-abort:" ^ spec_to_string spec) (fun rng ~protocol ->
      let initial = choose spec rng ~n:protocol.Protocol.parties in
      let driver = new_driver () in
      let claimed = ref false in
      let step (view : Adversary.view) =
        adopt driver view;
        let sends, _ = step_machines driver view in
        match driver.machines with
        | [] -> Adversary.silent_decision
        | (first, _) :: _ ->
            if view.Adversary.round = 1 then
              { Adversary.send =
                  sends @ [ (first, Wire.To Wire.functionality_id, Wire.frame [ "get-output" ]) ];
                corrupt = [];
                claim_learned = None }
            else if !claimed then Adversary.silent_decision
            else begin
              let from_f =
                List.find_map
                  (fun (env : Wire.envelope) ->
                    if env.Wire.src = Wire.functionality_id then
                      match Wire.unframe env.Wire.payload with
                      | [ "output"; y ] -> Some y
                      | _ -> None
                      | exception Invalid_argument _ -> None
                    else None)
                  view.Adversary.rushed
              in
              match from_f with
              | Some y ->
                  claimed := true;
                  { Adversary.send =
                      [ (first, Wire.To Wire.functionality_id, Wire.frame [ "abort" ]) ];
                    corrupt = [];
                    claim_learned = Some y }
              | None -> { Adversary.send = sends; corrupt = []; claim_learned = None }
            end
      in
      { Adversary.initial; step })

let substitute_input ~input spec =
  Adversary.make
    ~name:(Printf.sprintf "substitute(%s):%s" input (spec_to_string spec))
    (fun rng ~protocol ->
      let initial = choose spec rng ~n:protocol.Protocol.parties in
      let driver = new_driver () in
      let substituted = ref false in
      let step (view : Adversary.view) =
        adopt driver view;
        (* Rebuild the corrupted machines with the substituted input on
           first contact: run the protocol's honest code on a lie. *)
        if not !substituted then begin
          substituted := true;
          driver.machines <-
            List.map
              (fun (c : Adversary.corrupted) ->
                ( c.Adversary.id,
                  protocol.Protocol.make_party
                    ~rng:(Rng.split rng ~label:("substitute-" ^ string_of_int c.Adversary.id))
                    ~id:c.Adversary.id ~n:protocol.Protocol.parties ~input
                    ~setup:c.Adversary.setup ))
              view.Adversary.corrupted
        end;
        let sends, outputs = step_machines driver view in
        { Adversary.send = sends;
          corrupt = [];
          claim_learned = (match outputs with v :: _ -> Some v | [] -> None) }
      in
      { Adversary.initial; step })

let standard_zoo ?func ~n ~max_round () =
  let sizes = List.init (max 1 (n - 1)) (fun t -> t + 1) in
  let specs =
    Random_party :: (List.map (fun t -> Random_subset t) sizes @ [ Everyone ])
  in
  let rounds =
    List.sort_uniq compare
      (List.filter (fun r -> r >= 1 && r <= max_round) [ 1; 2; 3; 4; 5; 6; 7; max_round ])
  in
  Adversary.passive
  :: List.concat_map
       (fun spec ->
         silent spec :: semi_honest spec :: greedy ?func spec :: grab_and_abort spec
         :: List.map (fun r -> abort_at ~round:r spec) rounds)
       specs

let greedy_per_t ?func ~n () = List.init (n - 1) (fun t -> greedy ?func (Random_subset (t + 1)))
