module Protocol = Fair_exec.Protocol
module Adversary = Fair_exec.Adversary
module Machine = Fair_exec.Machine
module Wire = Fair_exec.Wire
module Trace = Fair_exec.Trace
module Engine = Fair_exec.Engine
module Rng = Fair_crypto.Rng
module Hmac = Fair_crypto.Hmac
module Sha256 = Fair_crypto.Sha256
module Func = Fair_mpc.Func
module Events = Fairness.Events

type variant = {
  label : string;
  lambda : float;
  rounds : int;
  fake1 : Rng.t -> inputs:string array -> string;
  fake2 : Rng.t -> inputs:string array -> string;
}

let resample_eval (func : Func.t) ~keep rng ~inputs ~pool =
  let inputs' =
    Array.mapi (fun i x -> if i = keep then x else Rng.pick rng pool) inputs
  in
  Func.eval_exn func inputs'

let poly_domain ~func ~p ~domain1 ~domain2 =
  if p < 1 || domain1 = [] || domain2 = [] then invalid_arg "Gordon_katz.poly_domain";
  let m = max (List.length domain1) (List.length domain2) in
  let lambda = 1.0 /. float_of_int (p * m) in
  { label = Printf.sprintf "gk-domain(p=%d)" p;
    lambda;
    rounds = 4 * p * m;
    (* p1's fakes resample p2's input; p2's fakes resample p1's. *)
    fake1 = (fun rng ~inputs -> resample_eval func ~keep:0 rng ~inputs ~pool:domain2);
    fake2 = (fun rng ~inputs -> resample_eval func ~keep:1 rng ~inputs ~pool:domain1) }

let poly_range ~func:_ ~p ~range =
  if p < 1 || range = [] then invalid_arg "Gordon_katz.poly_range";
  let lambda = 1.0 /. float_of_int (p * p * List.length range) in
  let uniform rng ~inputs:_ = Rng.pick rng range in
  { label = Printf.sprintf "gk-range(p=%d)" p;
    lambda;
    rounds = 4 * p * p * List.length range;
    fake1 = uniform;
    fake2 = uniform }

let total_rounds ~variant ~offset = offset + (2 * variant.rounds) + 4

(* Exchange schedule: p1 forwards ct_b[i] at e1 i; p2 forwards ct_a[i] at
   e2 i. *)
let e1 ~offset i = offset + (2 * i) + 1
let e2 ~offset i = offset + (2 * i) + 2

(* ------------------------------------------------------------------ *)
(* Authenticated encryption of the dealt values                        *)
(* ------------------------------------------------------------------ *)

let xor_pad ~key ~index msg =
  let pad =
    Rng.bytes (Rng.create ~seed:(Printf.sprintf "gk-enc:%s:%d" key index)) (String.length msg)
  in
  String.init (String.length msg) (fun i -> Char.chr (Char.code msg.[i] lxor Char.code pad.[i]))

let enc ~key ~index msg =
  let ct = xor_pad ~key ~index msg in
  let tag = Hmac.mac ~key (Printf.sprintf "gk-tag:%d:%s" index ct) in
  Sha256.to_hex ct ^ "." ^ Sha256.to_hex tag

let dec ~key ~index s =
  match String.split_on_char '.' s with
  | [ ct_hex; tag_hex ] -> (
      match (Sha256.of_hex ct_hex, Sha256.of_hex tag_hex) with
      | ct, tag ->
          if Hmac.verify ~key ~msg:(Printf.sprintf "gk-tag:%d:%s" index ct) ~tag then
            Some (xor_pad ~key ~index ct)
          else None
      | exception Invalid_argument _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* ShareGen dealer (functionality id 0)                                *)
(* ------------------------------------------------------------------ *)

let dealer (func : Func.t) variant rng ~n =
  if n <> 2 then invalid_arg "Gordon_katz: two parties only";
  let inputs = Array.make 3 None in
  let dealt = ref false in
  let step () ~round ~inbox =
    List.iter
      (fun (src, payload) ->
        if src >= 1 && src <= 2 then
          match Wire.unframe payload with
          | [ "input"; x ] -> if inputs.(src) = None then inputs.(src) <- Some x
          | _ | (exception Invalid_argument _) -> ())
      inbox;
    if round = 2 && not !dealt then begin
      dealt := true;
      let xs =
        Array.init 2 (fun i ->
            match inputs.(i + 1) with Some x -> x | None -> func.Func.default_input)
      in
      let y = Func.eval_exn func xs in
      let r = variant.rounds in
      let istar =
        let rec go i = if i >= r then r else if Rng.bernoulli rng variant.lambda then i else go (i + 1) in
        go 1
      in
      let value_a i = if i >= istar then y else variant.fake1 rng ~inputs:xs in
      let value_b i = if i >= istar then y else variant.fake2 rng ~inputs:xs in
      let k1 = Sha256.to_hex (Rng.bytes rng 32) in
      let k2 = Sha256.to_hex (Rng.bytes rng 32) in
      let ct_a = List.init r (fun i -> enc ~key:k1 ~index:(i + 1) (value_a (i + 1))) in
      let ct_b = List.init r (fun i -> enc ~key:k2 ~index:(i + 1) (value_b (i + 1))) in
      let a0 = variant.fake1 rng ~inputs:xs and b0 = variant.fake2 rng ~inputs:xs in
      ( (),
        [ Machine.Send
            (Wire.To 1, Wire.frame [ "deal"; a0; k1; String.concat "~" ct_b ]);
          Machine.Send
            (Wire.To 2, Wire.frame [ "deal"; b0; k2; String.concat "~" ct_a ]);
          (* Audit record for the event classifier (engine-internal; never
             visible to the adversary). *)
          Machine.Send (Wire.To 0, Wire.frame [ "audit"; string_of_int istar; y ]) ] )
    end
    else ((), [])
  in
  Machine.make () step

(* ------------------------------------------------------------------ *)
(* Party machines                                                      *)
(* ------------------------------------------------------------------ *)

type party_state = {
  key : string;
  to_forward : string array; (* ciphertexts we relay to the peer *)
  last : string; (* last decrypted value: our fallback output *)
  have_deal : bool;
  halted : bool;
}

let party variant ~offset ~rng:_ ~id ~n:_ ~input ~setup:_ =
  let r = variant.rounds in
  let step st ~round ~inbox =
    if st.halted then (st, [])
    else if round = 1 then
      (st, [ Machine.Send (Wire.To Wire.functionality_id, Wire.frame [ "input"; input ]) ])
    else begin
      let st =
        if st.have_deal then st
        else
          match
            List.find_map
              (fun (src, payload) ->
                if src = Wire.functionality_id then
                  match Wire.unframe payload with
                  | [ "deal"; v0; key; cts ] -> Some (v0, key, cts)
                  | _ | (exception Invalid_argument _) -> None
                else None)
              inbox
          with
          | Some (v0, key, cts) ->
              { st with
                key;
                last = v0;
                to_forward = Array.of_list (String.split_on_char '~' cts);
                have_deal = true }
          | None -> st
      in
      if not st.have_deal then (st, [])
      else if id = 1 then begin
        (* p1 sends ct_b[i] at e1 i; processes ct_a[i-1] first. *)
        let i = (round - offset - 1) / 2 in
        if round = e1 ~offset i && i >= 1 && i <= r + 1 then begin
          let st, ok =
            if i = 1 then (st, true)
            else
              match
                List.find_map
                  (fun (src, payload) -> if src = 2 then Some payload else None)
                  inbox
              with
              | Some ct -> (
                  match dec ~key:st.key ~index:(i - 1) ct with
                  | Some v -> ({ st with last = v }, true)
                  | None -> (st, false))
              | None -> (st, false)
          in
          if not ok then ({ st with halted = true }, [ Machine.Output st.last ])
          else if i <= r then
            (st, [ Machine.Send (Wire.To 2, st.to_forward.(i - 1)) ])
          else (* i = r + 1: we just decrypted ct_a[r]; done *)
            ({ st with halted = true }, [ Machine.Output st.last ])
        end
        else (st, [])
      end
      else begin
        (* p2 processes ct_b[i] and replies with ct_a[i] at e2 i. *)
        let i = (round - offset - 2) / 2 in
        if round = e2 ~offset i && i >= 1 && i <= r then begin
          match
            List.find_map (fun (src, payload) -> if src = 1 then Some payload else None) inbox
          with
          | Some ct -> (
              match dec ~key:st.key ~index:i ct with
              | Some v ->
                  let st = { st with last = v } in
                  let send = Machine.Send (Wire.To 1, st.to_forward.(i - 1)) in
                  if i = r then ({ st with halted = true }, [ send; Machine.Output v ])
                  else (st, [ send ])
              | None -> ({ st with halted = true }, [ Machine.Output st.last ]))
          | None -> ({ st with halted = true }, [ Machine.Output st.last ])
        end
        else (st, [])
      end
    end
  in
  Machine.make
    { key = ""; to_forward = [||]; last = ""; have_deal = false; halted = false }
    step

let protocol_with_offset ~func ~variant ~offset =
  if func.Func.arity <> 2 then invalid_arg "Gordon_katz: two-party functions only";
  Protocol.make
    ~name:(Printf.sprintf "%s:%s" variant.label func.Func.name)
    ~parties:2
    ~max_rounds:(total_rounds ~variant ~offset)
    ~functionality:(dealer func variant)
    (party variant ~offset)

let protocol ~func ~variant = protocol_with_offset ~func ~variant ~offset:0

(* ------------------------------------------------------------------ *)
(* Simulator-faithful event accounting                                 *)
(* ------------------------------------------------------------------ *)

let audit_of trial =
  List.find_map
    (fun ev ->
      match ev with
      | Trace.Sent (_, env)
        when env.Wire.src = Wire.functionality_id && env.Wire.dst = Wire.To Wire.functionality_id
        -> (
          match Wire.unframe env.Wire.payload with
          | [ "audit"; istar; y ] -> (
              match int_of_string_opt istar with Some i -> Some (i, y) | None -> None)
          | _ | (exception Invalid_argument _) -> None)
      | _ -> None)
    (Trace.events trial.Events.outcome.Engine.trace)

(* The exchange round at which the corrupted party stopped cooperating:
   r+1 if it relayed all its ciphertexts (ran to completion), otherwise one
   past the last exchange message it sent.  This is the abort round the
   Theorem 23 simulator keys its decisions on, so the events below are the
   simulator's events, independent of chance value collisions. *)
let abort_round_of trial ~offset ~target =
  let peer = 3 - target in
  let last_sent =
    List.fold_left
      (fun acc ev ->
        match ev with
        | Trace.Sent (r, env)
          when env.Wire.src = target && env.Wire.dst = Wire.To peer && r >= offset + 3 ->
            let i =
              if target = 1 then (r - offset - 1) / 2 else (r - offset - 2) / 2
            in
            max acc i
        | _ -> acc)
      0
      (Trace.events trial.Events.outcome.Engine.trace)
  in
  last_sent + 1

(* What the two sides hold when the corrupted party aborts at exchange
   round a: a corrupted p2 holds b_a (it receives first) while p1 falls
   back to a_{a-1}; a corrupted p1 holds a_{a-1} while p2 falls back to
   b_{a-1}.  A value with index >= i* is the true output. *)
let simulator_events trial ~offset ~istar =
  match Events.corrupted_parties trial with
  | [] -> (false, true)
  | [ target ] ->
      let a = abort_round_of trial ~offset ~target in
      if target = 2 then (a >= istar, a > istar) else (a - 1 >= istar, a - 1 >= istar)
  | _ -> (true, true)

let overrides ~offset =
  { Events.learned =
      Some
        (fun trial ->
          match audit_of trial with
          | None -> false
          | Some (istar, _) -> fst (simulator_events trial ~offset ~istar));
    honest_got =
      Some
        (fun trial ->
          match audit_of trial with
          | None -> true
          | Some (istar, _) -> snd (simulator_events trial ~offset ~istar)) }

let sampler ~variant rng ~inputs ~honest =
  if honest = 1 then variant.fake1 rng ~inputs else variant.fake2 rng ~inputs

(* ------------------------------------------------------------------ *)
(* Adversary strategies                                                *)
(* ------------------------------------------------------------------ *)

let abort_at_exchange ~target ~gk_round =
  let round = if target = 1 then e1 ~offset:0 gk_round else e2 ~offset:0 gk_round in
  Adversaries.abort_at ~round (Adversaries.Fixed [ target ])

let probe_machine m ~start_round ~max_rounds =
  let rec go m round =
    if round > max_rounds then None
    else
      let m', actions = m.Machine.step ~round ~inbox:[] in
      match
        List.find_map
          (function Machine.Output v -> Some (Some v) | Machine.Abort_self -> Some None | Machine.Send _ -> None)
          actions
      with
      | Some result -> result
      | None -> go m' (round + 1)
  in
  go m start_round

(* Drive the corrupted party honestly; after each round probe the held
   fallback value; abort (and claim) once [decide history] fires. *)
let value_adversary ~name ~target ~decide =
  Adversary.make ~name (fun _rng ~protocol ->
      let machine = ref None in
      let history = ref [] in
      let aborted = ref false in
      let max_rounds = protocol.Protocol.max_rounds in
      let step (view : Adversary.view) =
        if !aborted then Adversary.silent_decision
        else begin
          (match !machine with
          | None ->
              List.iter
                (fun (c : Adversary.corrupted) ->
                  if c.Adversary.id = target then machine := Some c.Adversary.machine)
                view.Adversary.corrupted
          | Some _ -> ());
          match !machine with
          | None -> Adversary.silent_decision
          | Some m ->
              let inbox = try List.assoc target view.Adversary.inbox with Not_found -> [] in
              let m', actions = m.Machine.step ~round:view.Adversary.round ~inbox in
              machine := Some m';
              let sends =
                List.filter_map
                  (function
                    | Machine.Send (dst, payload) -> Some (target, dst, payload)
                    | Machine.Output _ | Machine.Abort_self -> None)
                  actions
              in
              let finished =
                List.find_map
                  (function Machine.Output v -> Some v | _ -> None)
                  actions
              in
              let held =
                match finished with
                | Some v -> Some v
                | None ->
                    probe_machine m' ~start_round:(view.Adversary.round + 1) ~max_rounds
              in
              (match held with Some v -> history := v :: !history | None -> ());
              if finished <> None then begin
                aborted := true;
                { Adversary.send = sends; corrupt = []; claim_learned = finished }
              end
              else if held <> None && decide (List.rev !history) then begin
                aborted := true;
                { Adversary.send = []; corrupt = []; claim_learned = held }
              end
              else { Adversary.send = sends; corrupt = []; claim_learned = None }
        end
      in
      { Adversary.initial = [ target ]; step })

let rec last_k k = function
  | [] -> []
  | l -> if List.length l <= k then l else last_k k (List.tl l)

let abort_on_repeat ~target ~k =
  value_adversary
    ~name:(Printf.sprintf "gk-repeat%d:p%d" k target)
    ~target
    ~decide:(fun history ->
      List.length history >= k
      &&
      match last_k k history with
      | v :: rest -> List.for_all (String.equal v) rest
      | [] -> false)

let abort_on_value ~target ~value =
  value_adversary
    ~name:(Printf.sprintf "gk-value(%s):p%d" value target)
    ~target
    ~decide:(fun history -> match List.rev history with v :: _ -> String.equal v value | [] -> false)

let zoo ~variant =
  let r = variant.rounds in
  let sample_rounds =
    let step = max 1 (r / 12) in
    List.sort_uniq compare
      (1 :: 2 :: r
      :: List.filter (fun i -> i >= 1 && i <= r) (List.init 13 (fun k -> 1 + (k * step))))
  in
  Adversary.passive
  :: Adversaries.semi_honest (Adversaries.Fixed [ 2 ])
  :: List.concat_map
       (fun target ->
         abort_on_repeat ~target ~k:2 :: abort_on_repeat ~target ~k:3
         :: abort_on_repeat ~target ~k:5
         :: List.map (fun gk_round -> abort_at_exchange ~target ~gk_round) sample_rounds)
       [ 1; 2 ]
