(** The generic adversary-strategy zoo.

    These are the protocol-independent strategies the paper's proofs use:

    - {!semi_honest} runs the corrupted parties' honest machines and merely
      records what they learn — the E11 baseline;
    - {!abort_at} behaves honestly until a fixed round, then goes silent —
      the family behind the reconstruction-round analyzer (Definition 8);
    - {!greedy} is the A1/A2/A_gen/A_ī strategy of Lemma 7, Theorem 4 and
      Lemma 12: run the corrupted coalition honestly, and before releasing
      each round's messages *probe* — by simulating the coalition forward
      against a silent residual network — whether the coalition already
      holds the evaluation's output; the moment it does, abort and claim it;
    - {!silent} corrupts and never speaks (crash-at-start);
    - {!substitute_input} replaces a corrupted party's input and otherwise
      runs semi-honestly (exercises the input-substitution power of
      F_sfe^⊥).

    Corruption patterns are expressed with {!corrupt_spec}. *)

module Adversary = Fair_exec.Adversary
module Rng = Fair_crypto.Rng

type corrupt_spec =
  | Nobody
  | Fixed of int list
  | Random_party  (** one uniform party — the "mixing" of Theorem 4 *)
  | Random_subset of int  (** a uniform size-t coalition — Lemma 13's mixing *)
  | All_but of int  (** the A_ī pattern of Lemma 12 *)
  | Everyone

val spec_to_string : corrupt_spec -> string

val choose : corrupt_spec -> Rng.t -> n:int -> int list

val semi_honest : corrupt_spec -> Adversary.t
val silent : corrupt_spec -> Adversary.t
val abort_at : round:int -> corrupt_spec -> Adversary.t

(** Behave honestly; at the given round send the hybrid's (abort) message
    to the trusted party (id 0) and go silent — "the adversary aborts the
    phase-1 subprotocol in one of its rounds", expressed at the hybrid's
    granularity. *)
val abort_via_functionality : round:int -> corrupt_spec -> Adversary.t

val greedy : ?func:Fair_mpc.Func.t -> corrupt_spec -> Adversary.t
(** [func] lets the strategy discount default-fallback evaluations it could
    compute on its own — required against protocols whose honest machines
    output f(x, default) on abort (the check "is this the default output?"
    in the paper's A1). *)

val adaptive_hunter : ?func:Fair_mpc.Func.t -> budget:int -> unit -> Adversary.t
(** Adaptive corruption up to [budget] parties: start with one uniform
    victim, corrupt one more honest party per round, probe the coalition
    for the output after every step and abort the moment it is held — the
    hunt for i* considered in the proof of Lemma 11.  ΠOpt-nSFE resists it
    because the phase-1 outputs of non-holders carry no information about
    i*, so adaptivity buys nothing over a static t-coalition. *)

val grab_and_abort : corrupt_spec -> Adversary.t
(** Hybrid-protocol strategy: request the corrupted parties' outputs from
    the trusted party and send it (abort) the moment a function output is
    rushed to the coalition — the optimal attack against the dummy
    F_sfe^⊥ protocol. *)

val substitute_input : input:string -> corrupt_spec -> Adversary.t

val standard_zoo : ?func:Fair_mpc.Func.t -> n:int -> max_round:int -> unit -> Adversary.t list
(** A broad pile of strategies for best-response sweeps: passive, silent,
    semi-honest, greedy and abort-at-r for every corruption size and a
    range of rounds.  Intended for "no adversary beats the bound" tests. *)

val greedy_per_t : ?func:Fair_mpc.Func.t -> n:int -> unit -> Adversary.t list
(** [greedy (Random_subset t)] for t = 1..n−1 — the per-coalition-size
    best-response family used by utility-balanced experiments. *)
