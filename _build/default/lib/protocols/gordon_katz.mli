(** The Gordon–Katz partially fair (1/p-secure) two-party protocols
    [Eurocrypt'10], analyzed in the paper's Section 5 / Appendix C.

    Structure (ShareGen as a trusted dealer, id 0): the dealer receives the
    inputs, draws the switch round i* (geometric with parameter λ, truncated
    to the last round), and prepares two authenticated value sequences —
    a_1..a_r for p1 and b_1..b_r for p2 — that are i.i.d. *fake* samples
    before i* and the true output from i* on.  The parties then alternate,
    p1 first, forwarding each other's encrypted-and-MACed values round by
    round; whoever observes an abort outputs the last value it decrypted.

    Variants:
    - {!poly_domain} (GK §3.2, Theorem 23 here): fake values are
      f(x, D̂) with the peer's input resampled from its (polynomial) domain;
      λ = 1/(p·max|domain|), r = 4·p·max|domain| rounds.
    - {!poly_range} (GK §3.3, Theorem 24 here): fake values are uniform in
      the (polynomial) range; λ = 1/(p²·|range|), r = 4·p²·|range|.

    Aborting at exactly i* is the only way to provoke E10 — the adversary's
    held value is then real while the honest party still holds a fake one —
    and the geometric switch makes that posterior ≤ 1/p.  The module's
    {!overrides} implement the exact simulator accounting of Theorem 23:
    the trace carries an audit record of (i*, y), and "the adversary
    learned" is credited only for a verified claim made while holding the
    real value.  Random fallback outputs are *expected* here (F_sfe^$
    semantics), so honest-got is judged against the true output alone. *)

module Protocol = Fair_exec.Protocol
module Adversary = Fair_exec.Adversary
module Func = Fair_mpc.Func
module Events = Fairness.Events

type variant = {
  label : string;
  lambda : float;  (** switch probability per round *)
  rounds : int;  (** r: number of exchange rounds *)
  fake1 : Fair_crypto.Rng.t -> inputs:string array -> string;
      (** distribution of p1's fake values (Y1(x1) of F_sfe^$) *)
  fake2 : Fair_crypto.Rng.t -> inputs:string array -> string;
}

val poly_domain : func:Func.t -> p:int -> domain1:string list -> domain2:string list -> variant
val poly_range : func:Func.t -> p:int -> range:string list -> variant

val protocol : func:Func.t -> variant:variant -> Protocol.t

val protocol_with_offset : func:Func.t -> variant:variant -> offset:int -> Protocol.t
(** Exchange schedule delayed by [offset] engine rounds (the dealer phase is
    unchanged) — used to embed the protocol as the tail of Π̃. *)

val total_rounds : variant:variant -> offset:int -> int

val overrides : offset:int -> Events.overrides
(** The Theorem 23 simulator accounting, reconstructed from the trace audit
    record. *)

val sampler : variant:variant -> Fair_mpc.Ideal.sampler
(** The Y_i(x_i) distributions of the corresponding F_sfe^$. *)

(** {1 Adversary strategies} *)

val abort_at_exchange : target:int -> gk_round:int -> Adversary.t
(** Corrupt p[target], play honestly, abort at exchange round [gk_round]
    (claiming the held value). *)

val abort_on_repeat : target:int -> k:int -> Adversary.t
(** Abort once the held value has stayed constant for [k] consecutive
    exchange rounds — the "detect stabilization" heuristic. *)

val abort_on_value : target:int -> value:string -> Adversary.t
(** Abort the first time the held value equals [value]. *)

val zoo : variant:variant -> Adversary.t list
(** Fixed-round aborters across the exchange, repeat- and value-triggered
    strategies, for both corruption targets, plus baselines. *)
