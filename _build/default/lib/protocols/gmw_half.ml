module Protocol = Fair_exec.Protocol
module Machine = Fair_exec.Machine
module Wire = Fair_exec.Wire
module Rng = Fair_crypto.Rng
module Sha256 = Fair_crypto.Sha256
module Field = Fair_field.Field
module Vss = Fair_sharing.Vss
module Func = Fair_mpc.Func
module Ideal = Fair_mpc.Ideal

let hybrid_rounds = Ideal.dummy_rounds + 2

let reconstruction_threshold ~n = (n / 2) + 1

let keystream pad len =
  let rng = Rng.create ~seed:("gmw-half-pad:" ^ string_of_int (Field.to_int pad)) in
  Rng.bytes rng len

let encrypt pad y =
  let ks = keystream pad (String.length y) in
  Sha256.to_hex (String.init (String.length y) (fun i -> Char.chr (Char.code y.[i] lxor Char.code ks.[i])))

let decrypt pad c_hex =
  let c = Sha256.of_hex c_hex in
  let ks = keystream pad (String.length c) in
  String.init (String.length c) (fun i -> Char.chr (Char.code c.[i] lxor Char.code ks.[i]))

(* F outputs: every party gets the ciphertext plus its VSS package. *)
let vss_outputs (func : Func.t) rng ~inputs =
  let n = func.Func.arity in
  let y = Func.eval_exn func inputs in
  let pad = Rng.field rng in
  let ciphertext = encrypt pad y in
  let packages = Vss.deal rng ~threshold:(reconstruction_threshold ~n) ~n pad in
  Array.init n (fun i ->
      Wire.frame [ "package"; ciphertext; Vss.package_to_string packages.(i) ])

type state = {
  package : (string * Vss.package) option; (* ciphertext, package *)
  received_round : int;
  halted : bool;
}

let party (func : Func.t) ~rng:_ ~id:_ ~n ~input ~setup:_ =
  ignore func;
  let step st ~round ~inbox =
    if st.halted then (st, [])
    else
      match st.package with
      | None -> (
          if round = 1 then
            (st, [ Machine.Send (Wire.To Wire.functionality_id, Ideal.msg_input input) ])
          else
            match
              List.find_map
                (fun (s, payload) -> if s = Wire.functionality_id then Some payload else None)
                inbox
            with
            | Some payload -> (
                match Wire.unframe payload with
                | [ "abort" ] -> ({ st with halted = true }, [ Machine.Abort_self ])
                | [ "output"; body ] -> (
                    match Wire.unframe body with
                    | [ "package"; ciphertext; pkg ] -> (
                    match Vss.package_of_string pkg with
                    | pkg ->
                        ( { st with package = Some (ciphertext, pkg); received_round = round },
                          [ Machine.Send
                              ( Wire.Broadcast,
                                Wire.frame
                                  [ "announce"; Vss.announcement_to_string (Vss.announce pkg) ] )
                          ] )
                        | exception Invalid_argument _ ->
                            ({ st with halted = true }, [ Machine.Abort_self ]))
                    | _ | (exception Invalid_argument _) -> (st, []))
                | _ | (exception Invalid_argument _) -> (st, []))
            | None -> (st, []))
      | Some (ciphertext, pkg) ->
          if round = st.received_round + 1 then begin
            let announcements =
              List.filter_map
                (fun (_, payload) ->
                  match Wire.unframe payload with
                  | [ "announce"; body ] -> (
                      match Vss.announcement_of_string body with
                      | a -> Some a
                      | exception Invalid_argument _ -> None)
                  | _ | (exception Invalid_argument _) -> None)
                inbox
            in
            match
              Vss.reconstruct pkg announcements ~threshold:(reconstruction_threshold ~n)
            with
            | Some pad -> ({ st with halted = true }, [ Machine.Output (decrypt pad ciphertext) ])
            | None -> ({ st with halted = true }, [ Machine.Abort_self ])
          end
          else (st, [])
  in
  Machine.make { package = None; received_round = 0; halted = false } step

let hybrid func =
  if func.Func.arity < 2 then invalid_arg "Gmw_half.hybrid: need n >= 2";
  Protocol.make
    ~name:(Printf.sprintf "gmw-half:%s" func.Func.name)
    ~parties:func.Func.arity ~max_rounds:hybrid_rounds
    ~functionality:(Ideal.sfe_abort ~func ~outputs:(vss_outputs func) ())
    (party func)
