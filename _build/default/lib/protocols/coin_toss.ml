module Protocol = Fair_exec.Protocol
module Adversary = Fair_exec.Adversary
module Machine = Fair_exec.Machine
module Wire = Fair_exec.Wire
module Engine = Fair_exec.Engine
module Rng = Fair_crypto.Rng
module Commit = Fair_crypto.Commit

let rounds = 3

type state = { peer_commitment : string option; halted : bool }

let party ~rng ~id ~n:_ ~input:_ ~setup:_ =
  let rng = Rng.split rng ~label:"coin" in
  let my_bit = if Rng.bool rng then "1" else "0" in
  let my_commitment, my_opening = Commit.commit rng my_bit in
  let peer = 3 - id in
  let step st ~round ~inbox =
    if st.halted then (st, [])
    else
      let st =
        match
          List.find_map
            (fun (src, payload) ->
              if src = peer then
                match Wire.unframe payload with
                | [ "commit"; c ] -> Some c
                | _ | (exception Invalid_argument _) -> None
              else None)
            inbox
        with
        | Some c -> { st with peer_commitment = Some c }
        | None -> st
      in
      match round with
      | 1 ->
          ( st,
            [ Machine.Send
                (Wire.To peer, Wire.frame [ "commit"; Commit.commitment_to_string my_commitment ])
            ] )
      | 2 ->
          ( st,
            [ Machine.Send (Wire.To peer, Wire.frame [ "open"; Commit.opening_to_string my_opening ])
            ] )
      | 3 -> (
          let opening =
            List.find_map
              (fun (src, payload) ->
                if src = peer then
                  match Wire.unframe payload with
                  | [ "open"; body ] -> (
                      match Commit.opening_of_string body with
                      | o -> Some o
                      | exception Invalid_argument _ -> None)
                  | _ | (exception Invalid_argument _) -> None
                else None)
              inbox
          in
          match (opening, st.peer_commitment) with
          | Some o, Some c
            when Commit.verify (Commit.commitment_of_string c) o
                 && List.mem (Commit.message o) [ "0"; "1" ] ->
              let b = (int_of_string my_bit + int_of_string (Commit.message o)) mod 2 in
              ({ st with halted = true }, [ Machine.Output (string_of_int b) ])
          | _ -> ({ st with halted = true }, [ Machine.Abort_self ]))
      | _ -> (st, [])
  in
  Machine.make { peer_commitment = None; halted = false } step

let protocol = Protocol.make ~name:"blum-coin-toss" ~parties:2 ~max_rounds:rounds party

let bit_of_opening body =
  match Commit.opening_of_string body with
  | o -> int_of_string_opt (Commit.message o)
  | exception Invalid_argument _ -> None

let veto_adversary ~target ~want =
  Adversary.make ~name:(Printf.sprintf "coin-veto(%s):p%d" want target) (fun _rng ~protocol:_ ->
      let machine = ref None in
      let step (view : Adversary.view) =
        (match !machine with
        | None ->
            List.iter
              (fun (c : Adversary.corrupted) ->
                if c.Adversary.id = target then machine := Some c.Adversary.machine)
              view.Adversary.corrupted
        | Some _ -> ());
        match !machine with
        | None -> Adversary.silent_decision
        | Some m ->
            let inbox = try List.assoc target view.Adversary.inbox with Not_found -> [] in
            let m', actions = m.Machine.step ~round:view.Adversary.round ~inbox in
            machine := Some m';
            let sends =
              List.filter_map
                (function
                  | Machine.Send (dst, payload) -> Some (target, dst, payload)
                  | Machine.Output _ | Machine.Abort_self -> None)
                actions
            in
            if view.Adversary.round <> 2 then
              { Adversary.send = sends; corrupt = []; claim_learned = None }
            else begin
              (* Rushing: the honest opening is already visible; veto the
                 toss if it would come out wrong. *)
              let my_bit =
                List.find_map
                  (fun (_, _, payload) ->
                    match Wire.unframe payload with
                    | [ "open"; body ] -> bit_of_opening body
                    | _ | (exception Invalid_argument _) -> None)
                  sends
              in
              let peer_bit =
                List.find_map
                  (fun (env : Wire.envelope) ->
                    match Wire.unframe env.Wire.payload with
                    | [ "open"; body ] -> bit_of_opening body
                    | _ | (exception Invalid_argument _) -> None)
                  view.Adversary.rushed
              in
              match (my_bit, peer_bit) with
              | Some a, Some b when string_of_int ((a + b) mod 2) <> want ->
                  { Adversary.send = []; corrupt = []; claim_learned = None }
              | _ -> { Adversary.send = sends; corrupt = []; claim_learned = None }
            end
      in
      { Adversary.initial = [ target ]; step })

type bias_stats = {
  trials : int;
  honest_zero : int;
  honest_one : int;
  honest_abort : int;
}

let measure_bias ~adversary ~trials ~seed =
  let zero = ref 0 and one = ref 0 and abort = ref 0 in
  for i = 0 to trials - 1 do
    let o =
      Engine.run ~protocol ~adversary ~inputs:[| ""; "" |]
        ~rng:(Rng.create ~seed:(Printf.sprintf "coin:%d:%d" seed i))
    in
    List.iter
      (fun (_, v) ->
        match v with
        | Some "0" -> incr zero
        | Some "1" -> incr one
        | Some _ -> ()
        | None -> incr abort)
      (Engine.honest_outputs o)
  done;
  { trials; honest_zero = !zero; honest_one = !one; honest_abort = !abort }
