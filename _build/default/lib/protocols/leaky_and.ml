module Protocol = Fair_exec.Protocol
module Adversary = Fair_exec.Adversary
module Machine = Fair_exec.Machine
module Wire = Fair_exec.Wire
module Engine = Fair_exec.Engine
module Rng = Fair_crypto.Rng
module Func = Fair_mpc.Func

let offset = 2

let variant =
  Gordon_katz.poly_domain ~func:Func.and_ ~p:4 ~domain1:[ "0"; "1" ] ~domain2:[ "0"; "1" ]

let total_rounds = Gordon_katz.total_rounds ~variant ~offset

let is_side_channel payload =
  match Wire.unframe payload with
  | [ "bit"; _ ] | [ "leak"; _ ] | [ "leak-empty" ] -> true
  | _ -> false
  | exception Invalid_argument _ -> false

let filter_inbox inbox = List.filter (fun (_, p) -> not (is_side_channel p)) inbox

let inner_party = Gordon_katz.protocol_with_offset ~func:Func.and_ ~variant ~offset

let wrapper ~rng ~id ~n ~input ~setup =
  let inner =
    inner_party.Protocol.make_party ~rng:(Rng.split rng ~label:"inner") ~id ~n ~input ~setup
  in
  let leak_coin = Rng.bernoulli (Rng.split rng ~label:"leak-coin") 0.25 in
  let step inner ~round ~inbox =
    let inner', actions = inner.Machine.step ~round ~inbox:(filter_inbox inbox) in
    let extra =
      if id = 2 && round = 1 then [ Machine.Send (Wire.To 1, Wire.frame [ "bit"; "0" ]) ]
      else if id = 1 && round = 2 then begin
        let got_one =
          List.exists
            (fun (src, payload) ->
              src = 2
              &&
              match Wire.unframe payload with
              | [ "bit"; "1" ] -> true
              | _ -> false
              | exception Invalid_argument _ -> false)
            inbox
        in
        if got_one then
          if leak_coin then [ Machine.Send (Wire.To 2, Wire.frame [ "leak"; input ]) ]
          else [ Machine.Send (Wire.To 2, Wire.frame [ "leak-empty" ]) ]
        else []
      end
      else []
    in
    (inner', extra @ actions)
  in
  Machine.make inner step

let protocol =
  Protocol.make ~name:"leaky-and" ~parties:2 ~max_rounds:total_rounds
    ~functionality:(fun rng ~n ->
      match inner_party.Protocol.functionality with
      | Some f -> f rng ~n
      | None -> Machine.silent)
    wrapper

(* Corrupt p2: send the 1-bit, run the rest honestly, claim a leaked x1. *)
let leak_adversary =
  Adversary.make ~name:"leaky-and-p2" (fun _rng ~protocol:_ ->
      let machine = ref None in
      let claimed = ref false in
      let step (view : Adversary.view) =
        (match !machine with
        | None ->
            List.iter
              (fun (c : Adversary.corrupted) ->
                if c.Adversary.id = 2 then machine := Some c.Adversary.machine)
              view.Adversary.corrupted
        | Some _ -> ());
        match !machine with
        | None -> Adversary.silent_decision
        | Some m ->
            let inbox = try List.assoc 2 view.Adversary.inbox with Not_found -> [] in
            let m', actions = m.Machine.step ~round:view.Adversary.round ~inbox in
            machine := Some m';
            let sends =
              List.filter_map
                (function
                  | Machine.Send (dst, payload) ->
                      let payload =
                        match Wire.unframe payload with
                        | [ "bit"; "0" ] -> Wire.frame [ "bit"; "1" ]
                        | _ -> payload
                        | exception Invalid_argument _ -> payload
                      in
                      Some (2, dst, payload)
                  | Machine.Output _ | Machine.Abort_self -> None)
                actions
            in
            let leak =
              if !claimed then None
              else
                List.find_map
                  (fun (src, payload) ->
                    if src = 1 then
                      match Wire.unframe payload with
                      | [ "leak"; x1 ] -> Some x1
                      | _ -> None
                      | exception Invalid_argument _ -> None
                    else None)
                  inbox
            in
            if leak <> None then claimed := true;
            { Adversary.send = sends; corrupt = []; claim_learned = leak }
      in
      { Adversary.initial = [ 2 ]; step })

type z_result = { z1_accepts : bool; z2_accepts : bool }

let run_z_environments ~seed =
  let master = Rng.of_int_seed seed in
  let x1 = if Rng.bool (Rng.split master ~label:"x1") then "1" else "0" in
  let outcome =
    Engine.run ~protocol ~adversary:leak_adversary ~inputs:[| x1; "0" |]
      ~rng:(Rng.split master ~label:"exec")
  in
  let reply = List.map snd outcome.Engine.claims in
  let p1_output =
    List.find_map
      (fun (id, r) ->
        if id = 1 then match r with Engine.Honest_output v -> Some v | _ -> None else None)
      outcome.Engine.results
  in
  (* Z2 accepts iff p1 sent a non-empty first-round reply (the leak fired);
     Z1 accepts iff the leaked value is x1 and p1's final output is 0. *)
  let z2_accepts = reply <> [] in
  let z1_accepts = List.mem x1 reply && p1_output = Some "0" in
  { z1_accepts; z2_accepts }
