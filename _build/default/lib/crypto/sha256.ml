(* FIPS 180-4 SHA-256 over Int32 words. *)

let k =
  [| 0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl;
     0x59f111f1l; 0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l;
     0x243185bel; 0x550c7dc3l; 0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l;
     0xc19bf174l; 0xe49b69c1l; 0xefbe4786l; 0x0fc19dc6l; 0x240ca1ccl;
     0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal; 0x983e5152l;
     0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
     0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl;
     0x53380d13l; 0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l;
     0xa2bfe8a1l; 0xa81a664bl; 0xc24b8b70l; 0xc76c51a3l; 0xd192e819l;
     0xd6990624l; 0xf40e3585l; 0x106aa070l; 0x19a4c116l; 0x1e376c08l;
     0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al; 0x5b9cca4fl;
     0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
     0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l |]

let rotr x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))

let digest msg =
  let open Int32 in
  let len = String.length msg in
  (* Padding: 0x80, zeros, 64-bit big-endian bit length. *)
  let total = len + 1 + 8 in
  let padded_len = (total + 63) / 64 * 64 in
  let buf = Bytes.make padded_len '\000' in
  Bytes.blit_string msg 0 buf 0 len;
  Bytes.set buf len '\x80';
  let bitlen = Int64.of_int (len * 8) in
  for i = 0 to 7 do
    Bytes.set buf
      (padded_len - 1 - i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bitlen (8 * i)) 0xFFL)))
  done;
  let h = [| 0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al;
             0x510e527fl; 0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l |] in
  let w = Array.make 64 0l in
  let byte i = of_int (Char.code (Bytes.get buf i)) in
  for block = 0 to (padded_len / 64) - 1 do
    let base = block * 64 in
    for t = 0 to 15 do
      let o = base + (t * 4) in
      w.(t) <-
        logor
          (shift_left (byte o) 24)
          (logor (shift_left (byte (o + 1)) 16)
             (logor (shift_left (byte (o + 2)) 8) (byte (o + 3))))
    done;
    for t = 16 to 63 do
      let s0 =
        logxor (rotr w.(t - 15) 7) (logxor (rotr w.(t - 15) 18) (shift_right_logical w.(t - 15) 3))
      in
      let s1 =
        logxor (rotr w.(t - 2) 17) (logxor (rotr w.(t - 2) 19) (shift_right_logical w.(t - 2) 10))
      in
      w.(t) <- add (add w.(t - 16) s0) (add w.(t - 7) s1)
    done;
    let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
    let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
    for t = 0 to 63 do
      let s1 = logxor (rotr !e 6) (logxor (rotr !e 11) (rotr !e 25)) in
      let ch = logxor (logand !e !f) (logand (lognot !e) !g) in
      let t1 = add !hh (add s1 (add ch (add k.(t) w.(t)))) in
      let s0 = logxor (rotr !a 2) (logxor (rotr !a 13) (rotr !a 22)) in
      let maj = logxor (logand !a !b) (logxor (logand !a !c) (logand !b !c)) in
      let t2 = add s0 maj in
      hh := !g;
      g := !f;
      f := !e;
      e := add !d t1;
      d := !c;
      c := !b;
      b := !a;
      a := add t1 t2
    done;
    h.(0) <- add h.(0) !a;
    h.(1) <- add h.(1) !b;
    h.(2) <- add h.(2) !c;
    h.(3) <- add h.(3) !d;
    h.(4) <- add h.(4) !e;
    h.(5) <- add h.(5) !f;
    h.(6) <- add h.(6) !g;
    h.(7) <- add h.(7) !hh
  done;
  String.init 32 (fun i ->
      let word = h.(i / 4) in
      let shift = 24 - (8 * (i mod 4)) in
      Char.chr (to_int (logand (shift_right_logical word shift) 0xFFl)))

let hex_chars = "0123456789abcdef"

let to_hex s =
  String.init
    (2 * String.length s)
    (fun i ->
      let c = Char.code s.[i / 2] in
      hex_chars.[if i mod 2 = 0 then c lsr 4 else c land 0xF])

let of_hex s =
  if String.length s mod 2 <> 0 then invalid_arg "Sha256.of_hex: odd length";
  let nibble c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Sha256.of_hex: bad character"
  in
  String.init
    (String.length s / 2)
    (fun i -> Char.chr ((nibble s.[2 * i] lsl 4) lor nibble s.[(2 * i) + 1]))

let hex_digest msg = to_hex (digest msg)
