module Field = Fair_field.Field

type key = { a : Field.t; b : Field.t }
type tag = Field.t

let gen rng = { a = Rng.field rng; b = Rng.field rng }

let tag key m =
  let acc = ref Field.zero in
  (* Horner over m_l .. m_1, then one more multiply so exponents start at 1. *)
  for i = Array.length m - 1 downto 0 do
    acc := Field.mul (Field.add !acc m.(i)) key.a
  done;
  Field.add key.b !acc

let verify key m t = Field.equal (tag key m) t

let tag_string key s = tag key (Field.encode_string s)
let verify_string key s t = Field.equal (tag_string key s) t

let int_to_wire n = string_of_int n

let key_to_string k = int_to_wire (Field.to_int k.a) ^ "," ^ int_to_wire (Field.to_int k.b)

let key_of_string s =
  match String.split_on_char ',' s with
  | [ a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b -> { a = Field.of_int a; b = Field.of_int b }
      | _ -> invalid_arg "Poly_mac.key_of_string")
  | _ -> invalid_arg "Poly_mac.key_of_string"

let tag_to_string t = int_to_wire (Field.to_int t)

let tag_of_string s =
  match int_of_string_opt s with
  | Some n -> Field.of_int n
  | None -> invalid_arg "Poly_mac.tag_of_string"

module Double = struct
  type dkey = key * key
  type dtag = tag * tag

  let gen rng = (gen rng, gen rng)
  let tag (k1, k2) m = (tag k1 m, tag k2 m)
  let verify (k1, k2) m (t1, t2) = verify k1 m t1 && verify k2 m t2
end
