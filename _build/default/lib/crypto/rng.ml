module Field = Fair_field.Field

type t = {
  seed : string;
  mutable counter : int;
  mutable buffer : string; (* unconsumed bytes of the current block *)
  mutable pos : int;
}

let create ~seed = { seed; counter = 0; buffer = ""; pos = 0 }

let of_int_seed n = create ~seed:("int-seed:" ^ string_of_int n)

let split g ~label = create ~seed:(Sha256.digest (g.seed ^ "|split|" ^ label))

let refill g =
  g.buffer <- Sha256.digest (g.seed ^ "|ctr|" ^ string_of_int g.counter);
  g.counter <- g.counter + 1;
  g.pos <- 0

let byte g =
  if g.pos >= String.length g.buffer then refill g;
  let b = Char.code g.buffer.[g.pos] in
  g.pos <- g.pos + 1;
  b

let bytes g n =
  String.init n (fun _ -> Char.chr (byte g))

let bits g k =
  if k <= 0 || k > 62 then invalid_arg "Rng.bits";
  let nbytes = (k + 7) / 8 in
  let v = ref 0 in
  for _ = 1 to nbytes do
    v := (!v lsl 8) lor byte g
  done;
  !v land ((1 lsl k) - 1)

let bool g = byte g land 1 = 1

let int g n =
  if n < 1 then invalid_arg "Rng.int";
  if n = 1 then 0
  else begin
    (* Rejection sampling on the smallest power-of-two envelope. *)
    let k = ref 1 in
    while 1 lsl !k < n do incr k done;
    let rec draw () =
      let v = bits g !k in
      if v < n then v else draw ()
    in
    draw ()
  end

let bernoulli g q =
  if q <= 0.0 then false
  else if q >= 1.0 then true
  else
    let v = float_of_int (bits g 53) /. 9007199254740992.0 (* 2^53 *) in
    v < q

let field g =
  let rec draw () =
    let v = bits g 31 in
    if v < Field.p then Field.of_int v else draw ()
  in
  draw ()

let rec field_nonzero g =
  let v = field g in
  if Field.equal v Field.zero then field_nonzero g else v

let field_vector g n = Array.init n (fun _ -> field g)

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int g (List.length l))
