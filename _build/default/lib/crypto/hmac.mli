(** HMAC-SHA256 (RFC 2104), validated against the RFC 4231 test vectors. *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag of [msg] under [key]. *)

val hex_mac : key:string -> string -> string
(** Hex form of {!mac}. *)

val verify : key:string -> msg:string -> tag:string -> bool
(** Constant-shape comparison of [tag] against the recomputed MAC. *)
