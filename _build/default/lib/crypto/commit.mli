(** Hash-based commitments.

    [commitment = SHA256(tag || randomness || message)] with 32 bytes of
    randomness: computationally hiding and binding in the random-oracle
    model.  Used by the contract-signing protocols Π1 and Π2 of the paper's
    introduction and by the coin-tossing subprotocol [4]. *)

type commitment = private string
(** The 32-byte commitment string sent over the wire. *)

type opening = private { randomness : string; message : string }
(** The decommitment: randomness plus the committed message. *)

val commit : Rng.t -> string -> commitment * opening
(** [commit rng msg] draws fresh randomness and commits to [msg]. *)

val verify : commitment -> opening -> bool
(** Check that [opening] opens [commitment]. *)

val message : opening -> string

val commitment_to_string : commitment -> string
val commitment_of_string : string -> commitment
(** Wire (de)serialization; a commitment is its raw digest. *)

val opening_to_string : opening -> string
val opening_of_string : string -> opening
(** @raise Invalid_argument on malformed input. *)
