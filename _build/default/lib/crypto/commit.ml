type commitment = string
type opening = { randomness : string; message : string }

let domain_tag = "fair-protocol/commit/v1"
let rand_len = 32

let digest_of ~randomness ~message = Sha256.digest (domain_tag ^ randomness ^ message)

let commit rng msg =
  let randomness = Rng.bytes rng rand_len in
  (digest_of ~randomness ~message:msg, { randomness; message = msg })

let verify c o = String.equal c (digest_of ~randomness:o.randomness ~message:o.message)

let message o = o.message

let commitment_to_string c = c
let commitment_of_string s = s

let opening_to_string o =
  if String.length o.randomness <> rand_len then invalid_arg "Commit.opening_to_string";
  o.randomness ^ o.message

let opening_of_string s =
  if String.length s < rand_len then invalid_arg "Commit.opening_of_string: too short";
  { randomness = String.sub s 0 rand_len;
    message = String.sub s rand_len (String.length s - rand_len) }
