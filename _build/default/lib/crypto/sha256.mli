(** A from-scratch SHA-256 (FIPS 180-4).

    Every keyed primitive in this repository (HMAC, the PRG, hash commitments,
    Lamport signatures) bottoms out here.  The implementation is validated in
    the test suite against the FIPS test vectors (empty string, "abc", the
    448-bit two-block message, and a million 'a's). *)

val digest : string -> string
(** [digest msg] is the 32-byte raw digest of [msg]. *)

val hex_digest : string -> string
(** [hex_digest msg] is the 64-character lowercase hex digest. *)

val to_hex : string -> string
(** Hex-encode an arbitrary byte string. *)

val of_hex : string -> string
(** Decode a hex string. @raise Invalid_argument on malformed input. *)
