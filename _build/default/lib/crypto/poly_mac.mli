(** Information-theoretic one-time polynomial MAC over GF(2^31-1).

    Key [(a, b)]; the tag of a message vector [m_1..m_l] is
    [b + Σ m_i · a^i].  Any forger seeing one (message, tag) pair succeeds
    with probability at most [l / p]: this is the MAC the paper's
    authenticated secret sharing (Appendix A) relies on.

    For 2^-62-level security, {!Double} stacks two independent keys. *)

module Field = Fair_field.Field

type key = private { a : Field.t; b : Field.t }
type tag = Field.t

val gen : Rng.t -> key
(** A fresh uniform key. *)

val tag : key -> Field.t array -> tag
val verify : key -> Field.t array -> tag -> bool

val tag_string : key -> string -> tag
(** MAC of a byte string via {!Field.encode_string}. *)

val verify_string : key -> string -> tag -> bool

val key_to_string : key -> string
val key_of_string : string -> key
(** Wire (de)serialization. @raise Invalid_argument on malformed input. *)

val tag_to_string : tag -> string
val tag_of_string : string -> tag

(** Two independent keys; forgery probability squared. *)
module Double : sig
  type dkey = private key * key
  type dtag = tag * tag

  val gen : Rng.t -> dkey
  val tag : dkey -> Field.t array -> dtag
  val verify : dkey -> Field.t array -> dtag -> bool
end
