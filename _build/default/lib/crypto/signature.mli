(** Hash-based digital signatures.

    {!Lamport} is the classic one-time signature scheme: existentially
    unforgeable under one signing query, from SHA-256 preimage resistance.
    {!Merkle} lifts it to a stateful many-time scheme by certifying 2^h
    one-time keys under a Merkle root.  The multi-party protocol ΠOpt-nSFE
    signs a single value (the output y) per execution, so {!Lamport} is what
    the protocol layer uses; {!Merkle} is provided for general use. *)

module Lamport : sig
  type secret_key
  type public_key
  type signature

  val keygen : Rng.t -> secret_key * public_key
  val sign : secret_key -> string -> signature
  val verify : public_key -> string -> signature -> bool

  val public_key_to_string : public_key -> string
  val public_key_of_string : string -> public_key
  val signature_to_string : signature -> string
  val signature_of_string : string -> signature
  (** Wire forms. @raise Invalid_argument on malformed input. *)
end

module Merkle : sig
  type signer
  (** Stateful: each [sign] consumes the next one-time key. *)

  type public_key
  type signature

  val keygen : Rng.t -> height:int -> signer * public_key
  (** 2^height one-time keys; [0 <= height <= 12]. *)

  val remaining : signer -> int
  (** One-time keys not yet consumed. *)

  val sign : signer -> string -> signature
  (** @raise Failure when all one-time keys are exhausted. *)

  val verify : public_key -> string -> signature -> bool
end
