lib/crypto/hmac.mli:
