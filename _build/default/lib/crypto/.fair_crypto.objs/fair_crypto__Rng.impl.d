lib/crypto/rng.ml: Array Char Fair_field List Sha256 String
