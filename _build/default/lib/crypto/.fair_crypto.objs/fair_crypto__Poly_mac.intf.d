lib/crypto/poly_mac.mli: Fair_field Rng
