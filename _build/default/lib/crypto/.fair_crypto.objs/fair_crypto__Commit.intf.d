lib/crypto/commit.mli: Rng
