lib/crypto/signature.ml: Array Char List Rng Sha256 String
