lib/crypto/poly_mac.ml: Array Fair_field Rng String
