lib/crypto/rng.mli: Fair_field
