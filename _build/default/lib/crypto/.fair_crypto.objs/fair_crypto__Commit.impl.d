lib/crypto/commit.ml: Rng Sha256 String
