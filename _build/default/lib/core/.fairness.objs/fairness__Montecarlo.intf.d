lib/core/montecarlo.mli: Events Fair_crypto Fair_exec Fair_mpc Payoff Utility
