lib/core/statdist.ml: Hashtbl
