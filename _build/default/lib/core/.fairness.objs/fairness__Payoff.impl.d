lib/core/payoff.ml: Format
