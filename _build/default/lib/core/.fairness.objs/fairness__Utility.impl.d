lib/core/utility.ml: Events Format List Payoff
