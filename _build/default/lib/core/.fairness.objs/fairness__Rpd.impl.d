lib/core/rpd.ml: Array Format
