lib/core/bounds.ml: Payoff
