lib/core/statdist.mli: Hashtbl
