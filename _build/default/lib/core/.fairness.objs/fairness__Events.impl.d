lib/core/events.ml: Array Fair_exec Fair_mpc Format List
