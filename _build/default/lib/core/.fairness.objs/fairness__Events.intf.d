lib/core/events.mli: Fair_exec Fair_mpc Format
