lib/core/relation.ml: Format Montecarlo
