lib/core/rpd.mli: Format
