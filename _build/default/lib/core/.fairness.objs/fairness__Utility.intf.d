lib/core/utility.mli: Events Format Payoff
