lib/core/balanced.mli: Montecarlo Payoff
