lib/core/cost.mli: Payoff
