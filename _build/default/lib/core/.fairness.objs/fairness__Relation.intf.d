lib/core/relation.mli: Format Montecarlo
