lib/core/montecarlo.ml: Array Events Fair_crypto Fair_exec Fair_field Fair_mpc Hashtbl List Payoff Printf Utility
