lib/core/payoff.mli: Format
