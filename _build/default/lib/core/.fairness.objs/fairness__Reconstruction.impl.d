lib/core/reconstruction.ml: Fair_exec Fair_mpc List Montecarlo Utility
