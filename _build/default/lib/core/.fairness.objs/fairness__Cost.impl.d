lib/core/cost.ml: Bounds List
