lib/core/balanced.ml: Bounds List Montecarlo
