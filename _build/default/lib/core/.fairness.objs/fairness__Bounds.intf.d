lib/core/bounds.mli: Payoff
