lib/core/reconstruction.mli: Fair_exec Fair_mpc Montecarlo Payoff
