type t = { g00 : float; g01 : float; g10 : float; g11 : float }

let v (g00, g01, g10, g11) = { g00; g01; g10; g11 }

let in_gamma_fair g =
  g.g01 = 0.0
  && g.g01 <= min g.g00 g.g11
  && max g.g00 g.g11 < g.g10

let in_gamma_fair_plus g = in_gamma_fair g && g.g00 <= g.g11

let check_fair g =
  if in_gamma_fair g then g else invalid_arg "Payoff.check_fair: vector outside Gamma_fair"

let check_fair_plus g =
  if in_gamma_fair_plus g then g
  else invalid_arg "Payoff.check_fair_plus: vector outside Gamma+_fair"

let normalize g =
  { g00 = g.g00 -. g.g01; g01 = 0.0; g10 = g.g10 -. g.g01; g11 = g.g11 -. g.g01 }

let default = { g00 = 0.2; g01 = 0.0; g10 = 1.0; g11 = 0.5 }
let zero_one = { g00 = 0.0; g01 = 0.0; g10 = 1.0; g11 = 0.0 }

let sweep =
  [ default;
    zero_one;
    { g00 = 0.0; g01 = 0.0; g10 = 1.0; g11 = 0.9 };
    { g00 = 0.5; g01 = 0.0; g10 = 2.0; g11 = 0.5 };
    { g00 = 0.1; g01 = 0.0; g10 = 1.0; g11 = 0.1 } ]

let pp fmt g =
  Format.fprintf fmt "(γ00=%g, γ01=%g, γ10=%g, γ11=%g)" g.g00 g.g01 g.g10 g.g11

let to_string g = Format.asprintf "%a" pp g
