type distribution = {
  p00 : float;
  p01 : float;
  p10 : float;
  p11 : float;
}

let uniform_over events =
  let n = List.length events in
  if n = 0 then invalid_arg "Utility.uniform_over: empty";
  let w = 1.0 /. float_of_int n in
  let count e = float_of_int (List.length (List.filter (fun x -> x = e) events)) *. w in
  { p00 = count Events.E00; p01 = count Events.E01; p10 = count Events.E10; p11 = count Events.E11 }

let of_counts counts =
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 counts in
  if total = 0 then invalid_arg "Utility.of_counts: no observations";
  let get e =
    float_of_int (try List.assoc e counts with Not_found -> 0) /. float_of_int total
  in
  { p00 = get Events.E00; p01 = get Events.E01; p10 = get Events.E10; p11 = get Events.E11 }

let expected (g : Payoff.t) d =
  (g.Payoff.g00 *. d.p00) +. (g.Payoff.g01 *. d.p01) +. (g.Payoff.g10 *. d.p10)
  +. (g.Payoff.g11 *. d.p11)

let expected_with_cost g d ~cost ~corrupted =
  expected g d -. List.fold_left (fun acc (t, p) -> acc +. (cost t *. p)) 0.0 corrupted

let pp fmt d =
  Format.fprintf fmt "E00=%.4f E01=%.4f E10=%.4f E11=%.4f" d.p00 d.p01 d.p10 d.p11
