(** The relative-fairness relation ≼_γ (Definition 1) and its derived
    judgments, evaluated on measured estimates.

    Π ≼_γ Π' ("Π is at least as γ-fair as Π'") iff
    sup_A u(Π, A) ≤ sup_A u(Π', A) up to negligible slack; empirically the
    suprema are taken over an adversary zoo and the slack is the combined
    3σ sampling error. *)

type verdict =
  | At_least_as_fair  (** Π ≼ Π' strictly or within noise *)
  | Strictly_fairer  (** Π ≼ Π' with a gap beyond noise *)
  | Less_fair
  | Equally_fair  (** both directions hold within noise *)

val compare_sup : pi:Montecarlo.estimate -> pi':Montecarlo.estimate -> verdict
(** Compare the best-response estimates of two protocols. *)

val pp_verdict : Format.formatter -> verdict -> unit

val is_optimal : best:Montecarlo.estimate -> bound:float -> bool
(** Definition 2, empirically: the measured best attacker is within noise of
    the proven optimal value [bound], i.e. the protocol meets the maximal
    element's value. *)

val fairness_ratio : pi:Montecarlo.estimate -> pi':Montecarlo.estimate -> float
(** u_best(Π') / u_best(Π): "Π is k times as fair as Π'" in the loose sense
    of the paper's introduction (Π2 is twice as fair as Π1). *)
