(** Closed-form bounds from the paper's theorems and lemmas, used by tests,
    experiments, and benchmarks as the "paper-reported numbers". *)

val opt2 : Payoff.t -> float
(** Theorem 3 / Theorem 4: the optimal two-party value (γ10 + γ11) / 2. *)

val optn : Payoff.t -> n:int -> t:int -> float
(** Lemma 11: (t·γ10 + (n−t)·γ11) / n, the best t-adversary's utility
    against ΠOpt-nSFE. *)

val optn_best : Payoff.t -> n:int -> float
(** Lemma 13: ((n−1)·γ10 + γ11) / n — the overall best adversary (t = n−1)
    for γ ∈ Γ+_fair. *)

val balanced_sum : Payoff.t -> n:int -> float
(** Lemma 14 / Lemma 16: Σ_{t=1}^{n-1} u_A = (n−1)(γ10 + γ11)/2. *)

val gmw_half : Payoff.t -> n:int -> t:int -> float
(** Lemma 17: the honest-majority protocol's per-t utility — γ11 for
    t < ⌈n/2⌉ and γ10 for t ≥ ⌈n/2⌉. *)

val gmw_half_sum : Payoff.t -> n:int -> float
(** Σ_t of {!gmw_half}; exceeds {!balanced_sum} by (γ10 − γ11)/2·(1 + (n+1) mod 2)…
    computed exactly rather than in closed form. *)

val artificial_sum : Payoff.t -> n:int -> float
(** Lemma 18: ((3n−1)·γ10 + (n+1)·γ11) / 2n — the optimal-but-unbalanced
    protocol's two-adversary sum (t = 1 plus t = n−1). *)

val artificial_single : Payoff.t -> n:int -> float
(** The t = 1 adversary of Lemma 18:
    γ10/n + (n−1)/n · (γ10 + γ11)/2. *)

val ideal_utility : Payoff.t -> t:int -> float
(** Utility of the best adversary against the dummy fair protocol Φ^F_sfe:
    γ01 for t = 0 and γ11 for t ≥ 1 (with γ ∈ Γ+_fair the adversary prefers
    learning the output). *)

val balanced_cost : Payoff.t -> n:int -> t:int -> float
(** Theorem 6's optimal cost function c(t) = u_A(ΠOpt-nSFE, A_t) − s(t):
    the corruption price that makes the utility-balanced protocol ideally
    fair. *)

val gk_upper : p:int -> float
(** Theorem 23/24: 1/p, the Gordon–Katz bound under γ = (0,0,1,0). *)

val unfair_sfe : Payoff.t -> float
(** Against a protocol that opens the output in a single reconstruction
    round (Lemma 10), the rushing adversary gets γ10. *)
