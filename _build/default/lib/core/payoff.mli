(** Payoff (preference) vectors ~γ = (γ00, γ01, γ10, γ11) — Section 3 of the
    paper.

    γ_ij is the attacker's payoff for provoking event E_ij, where i = 1 iff
    the adversary learned the output and j = 1 iff the honest parties
    received theirs.  The natural fairness class Γ_fair requires

      0 = γ01 ≤ min(γ00, γ11)  and  max(γ00, γ11) < γ10,

    and the multi-party class Γ+_fair additionally γ00 ≤ γ11. *)

type t = { g00 : float; g01 : float; g10 : float; g11 : float }

val v : float * float * float * float -> t
(** [(γ00, γ01, γ10, γ11)]. *)

val in_gamma_fair : t -> bool
val in_gamma_fair_plus : t -> bool

val check_fair : t -> t
(** Identity on Γ_fair members. @raise Invalid_argument otherwise. *)

val check_fair_plus : t -> t

val normalize : t -> t
(** Shift so that γ01 = 0 (the w.l.o.g. normalization of Section 3). *)

val default : t
(** (0.2, 0, 1, 0.5): a representative of Γ+_fair used throughout the
    experiments. *)

val zero_one : t
(** (0, 0, 1, 0): the vector under which utility-based fairness implies
    1/p-security (Lemma 25). *)

val sweep : t list
(** A small set of Γ+_fair vectors for bound-robustness sweeps. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
