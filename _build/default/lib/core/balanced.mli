(** Utility-balanced fairness (Definition 5) and φ-fairness (Definition 21).

    A protocol is utility-balanced γ-fair when the *sum* of the utilities of
    the best t-adversaries, t = 1..n−1, is minimal; Lemmas 14/16 pin that
    minimum at (n−1)(γ10 + γ11)/2.  The per-t profile φ(t) refines this. *)

val sum_over_t : (int * Montecarlo.estimate) list -> float
(** Σ_t û(Π, A_t) over a per-t best-response table (t = 1..n−1). *)

val sum_std_err : (int * Montecarlo.estimate) list -> float
(** Standard error of the sum (independent estimates). *)

val is_balanced : per_t:(int * Montecarlo.estimate) list -> gamma:Payoff.t -> n:int -> bool
(** The measured sum matches the Lemma 14 bound within 3σ (both
    directions: a protocol beating the bound would contradict Lemma 16, a
    protocol exceeding it is not balanced). *)

val exceeds_balanced_bound :
  per_t:(int * Montecarlo.estimate) list -> gamma:Payoff.t -> n:int -> bool
(** The sufficient criterion after Definition 5: the measured sum exceeds
    (n−1)(γ10+γ11)/2 beyond noise, hence the protocol is not balanced. *)

val phi_fair : per_t:(int * Montecarlo.estimate) list -> phi:(int -> float) -> bool
(** Definition 21: û(Π, A_t) ≤ φ(t) (+3σ) for every measured t. *)

val phi_of_measurements : per_t:(int * Montecarlo.estimate) list -> int -> float
(** The empirical profile: measured best utility per coalition size
    (0 outside the measured range). *)
