module Rng = Fair_crypto.Rng
module Engine = Fair_exec.Engine
module Protocol = Fair_exec.Protocol
module Adversary = Fair_exec.Adversary
module Func = Fair_mpc.Func

type environment = Rng.t -> string array

let fixed_inputs xs _rng = Array.copy xs

let uniform_field_inputs ~n rng =
  Array.init n (fun _ -> string_of_int (Fair_field.Field.to_int (Rng.field rng)))

let uniform_bit_inputs ~n rng = Array.init n (fun _ -> if Rng.bool rng then "1" else "0")

let uniform_mod_inputs ~m ~n rng = Array.init n (fun _ -> string_of_int (Rng.int rng m))

type estimate = {
  utility : float;
  std_err : float;
  distribution : Utility.distribution;
  counts : (Events.event * int) list;
  corrupted_counts : (int * int) list;
  breaches : int;
  trials : int;
}

let estimate ?(overrides = Events.no_overrides) ~protocol ~adversary ~func ~gamma ~env
    ~trials ~seed () =
  if trials < 1 then invalid_arg "Montecarlo.estimate: trials < 1";
  let counts = Hashtbl.create 4 in
  let corrupted_counts = Hashtbl.create 4 in
  let breaches = ref 0 in
  let sum = ref 0.0 and sum_sq = ref 0.0 in
  for i = 0 to trials - 1 do
    let master = Rng.create ~seed:(Printf.sprintf "mc:%d:%d" seed i) in
    let inputs = env (Rng.split master ~label:"env") in
    let outcome =
      Engine.run ~protocol ~adversary ~inputs ~rng:(Rng.split master ~label:"exec")
    in
    let trial = { Events.outcome; inputs; func } in
    let cl = Events.classify ~overrides trial in
    if cl.Events.correctness_breach then incr breaches;
    let bump tbl key = Hashtbl.replace tbl key (1 + try Hashtbl.find tbl key with Not_found -> 0) in
    bump counts cl.Events.event;
    bump corrupted_counts (List.length (Events.corrupted_parties trial));
    let payoff =
      match cl.Events.event with
      | Events.E00 -> gamma.Payoff.g00
      | Events.E01 -> gamma.Payoff.g01
      | Events.E10 -> gamma.Payoff.g10
      | Events.E11 -> gamma.Payoff.g11
    in
    sum := !sum +. payoff;
    sum_sq := !sum_sq +. (payoff *. payoff)
  done;
  let n = float_of_int trials in
  let mean = !sum /. n in
  let var = max 0.0 ((!sum_sq /. n) -. (mean *. mean)) in
  let std_err = sqrt (var /. n) in
  let counts = Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [] in
  { utility = mean;
    std_err;
    distribution = Utility.of_counts counts;
    counts;
    corrupted_counts = Hashtbl.fold (fun k v acc -> (k, v) :: acc) corrupted_counts [];
    breaches = !breaches;
    trials }

let estimate_with_cost e ~cost =
  let penalty =
    List.fold_left
      (fun acc (t, c) -> acc +. (cost t *. float_of_int c /. float_of_int e.trials))
      0.0 e.corrupted_counts
  in
  e.utility -. penalty

let best_response ?(overrides = Events.no_overrides) ~protocol ~adversaries ~func ~gamma
    ~env ~trials ~seed () =
  match adversaries with
  | [] -> invalid_arg "Montecarlo.best_response: empty zoo"
  | _ ->
      let scored =
        List.map
          (fun adversary ->
            (adversary, estimate ~overrides ~protocol ~adversary ~func ~gamma ~env ~trials ~seed ()))
          adversaries
      in
      List.fold_left
        (fun (ba, be) (a, e) -> if e.utility > be.utility then (a, e) else (ba, be))
        (List.hd scored) (List.tl scored)

let within_bound e ~bound = e.utility <= bound +. (3.0 *. e.std_err) +. 1e-9
let attains_bound e ~bound = e.utility >= bound -. (3.0 *. e.std_err) -. 1e-9
