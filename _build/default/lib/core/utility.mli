(** The attacker's expected payoff (Equation 1 of the paper) computed from
    an event distribution, and its corruption-cost variant (Equation 5). *)

type distribution = {
  p00 : float;
  p01 : float;
  p10 : float;
  p11 : float;
}
(** Event probabilities; must sum to 1 (up to rounding). *)

val uniform_over : Events.event list -> distribution
val of_counts : (Events.event * int) list -> distribution
(** Empirical distribution from per-event counts. *)

val expected : Payoff.t -> distribution -> float
(** Σ_ij γ_ij · Pr[E_ij]. *)

val expected_with_cost :
  Payoff.t -> distribution -> cost:(int -> float) -> corrupted:(int * float) list -> float
(** Equation 5: Σ γ_ij Pr[E_ij] − Σ_I C(I)·Pr[E_I], with corruption-set
    events summarized by [(t, Pr[t parties corrupted])] for cost functions
    that depend only on the coalition size (as in Theorem 6). *)

val pp : Format.formatter -> distribution -> unit
