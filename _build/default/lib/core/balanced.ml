let sum_over_t per_t =
  List.fold_left (fun acc (_, e) -> acc +. e.Montecarlo.utility) 0.0 per_t

let sum_std_err per_t =
  sqrt
    (List.fold_left
       (fun acc (_, e) ->
         let s = e.Montecarlo.std_err in
         acc +. (s *. s))
       0.0 per_t)

let is_balanced ~per_t ~gamma ~n =
  let bound = Bounds.balanced_sum gamma ~n in
  let sum = sum_over_t per_t in
  abs_float (sum -. bound) <= (3.0 *. sum_std_err per_t) +. 1e-9

let exceeds_balanced_bound ~per_t ~gamma ~n =
  let bound = Bounds.balanced_sum gamma ~n in
  sum_over_t per_t > bound +. (3.0 *. sum_std_err per_t) +. 1e-9

let phi_fair ~per_t ~phi =
  List.for_all
    (fun (t, e) ->
      e.Montecarlo.utility <= phi t +. (3.0 *. e.Montecarlo.std_err) +. 1e-9)
    per_t

let phi_of_measurements ~per_t t =
  match List.assoc_opt t per_t with
  | Some e -> e.Montecarlo.utility
  | None -> 0.0
