type verdict =
  | At_least_as_fair
  | Strictly_fairer
  | Less_fair
  | Equally_fair

let compare_sup ~(pi : Montecarlo.estimate) ~(pi' : Montecarlo.estimate) =
  let slack = 3.0 *. (pi.Montecarlo.std_err +. pi'.Montecarlo.std_err) +. 1e-9 in
  let u = pi.Montecarlo.utility and u' = pi'.Montecarlo.utility in
  if abs_float (u -. u') <= slack then Equally_fair
  else if u < u' -. slack then Strictly_fairer
  else if u <= u' +. slack then At_least_as_fair
  else Less_fair

let pp_verdict fmt v =
  Format.pp_print_string fmt
    (match v with
    | At_least_as_fair -> "at least as fair"
    | Strictly_fairer -> "strictly fairer"
    | Less_fair -> "less fair"
    | Equally_fair -> "equally fair")

let is_optimal ~(best : Montecarlo.estimate) ~bound =
  Montecarlo.within_bound best ~bound && Montecarlo.attains_bound best ~bound

let fairness_ratio ~(pi : Montecarlo.estimate) ~(pi' : Montecarlo.estimate) =
  if pi.Montecarlo.utility = 0.0 then infinity
  else pi'.Montecarlo.utility /. pi.Montecarlo.utility
