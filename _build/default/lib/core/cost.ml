type cost = int -> float

let zero _ = 0.0

let linear ~per_party t = per_party *. float_of_int t

let theorem6 gamma ~n t =
  if t = 0 then 0.0 else Bounds.balanced_cost gamma ~n ~t

let dominates ~c ~c' ~n =
  List.for_all (fun t -> c t >= c' t -. 1e-12) (List.init n (fun i -> i + 1))

let strictly_dominates ~c ~c' ~n =
  List.for_all (fun t -> c t > c' t +. 1e-12) (List.init n (fun i -> i + 1))

let ideal_payoff_with_cost gamma ~cost ~t = Bounds.ideal_utility gamma ~t -. cost t

let ideal_value gamma ~cost ~n =
  List.fold_left
    (fun acc t -> max acc (ideal_payoff_with_cost gamma ~cost ~t))
    neg_infinity
    (List.init (n + 1) (fun t -> t))

let is_ideally_fair ~best_utility_with_cost ~std_err ~gamma ~cost ~n =
  best_utility_with_cost <= ideal_value gamma ~cost ~n +. (3.0 *. std_err) +. 1e-9

let phi_cost_correspondence ~phi ~gamma t =
  if t = 0 then 0.0 else phi t -. Bounds.ideal_utility gamma ~t
