(** The Rational-Protocol-Design attack game (Section 2): a zero-sum game
    between the protocol designer D (picks Π, minimizes the attacker's
    utility) and the attacker A (picks a strategy, maximizes it).

    Experiments tabulate û(Π, A) over finite designer and attacker strategy
    spaces; an optimally fair protocol is a minimax row of the table, and
    the footnote-1 remark — optimal protocols induce an equilibrium of the
    attack meta-game — is checked with {!is_equilibrium}. *)

type table = {
  designer : string array;  (** row labels: protocols *)
  attacker : string array;  (** column labels: adversary strategies *)
  utility : float array array;  (** utility.(row).(col) = û(Π_row, A_col) *)
}

val make : designer:string array -> attacker:string array -> utility:float array array -> table
(** @raise Invalid_argument on ragged or mismatched dimensions. *)

val best_response_value : table -> row:int -> int * float
(** Attacker's best response against a fixed protocol: (argmax col, value). *)

val minimax : table -> int * float
(** Designer's pure minimax: the row minimizing the attacker's best
    response, with its value — the "optimally fair" protocol of
    Definition 2 within the tabulated space. *)

val maximin : table -> int * float
(** Attacker's pure maximin: the column maximizing its guaranteed utility. *)

val is_equilibrium : table -> row:int -> col:int -> bool
(** (row, col) is a pure saddle point: no designer deviation lowers and no
    attacker deviation raises the utility. *)

val has_pure_equilibrium : table -> (int * int) option

val pp : Format.formatter -> table -> unit
