type table = {
  designer : string array;
  attacker : string array;
  utility : float array array;
}

let make ~designer ~attacker ~utility =
  if Array.length utility <> Array.length designer then invalid_arg "Rpd.make: rows";
  Array.iter
    (fun row -> if Array.length row <> Array.length attacker then invalid_arg "Rpd.make: cols")
    utility;
  if Array.length designer = 0 || Array.length attacker = 0 then
    invalid_arg "Rpd.make: empty strategy space";
  { designer; attacker; utility }

let argmax a =
  let best = ref 0 in
  Array.iteri (fun i v -> if v > a.(!best) then best := i) a;
  (!best, a.(!best))

let best_response_value t ~row = argmax t.utility.(row)

let minimax t =
  let values = Array.map (fun row -> snd (argmax row)) t.utility in
  let best = ref 0 in
  Array.iteri (fun i v -> if v < values.(!best) then best := i) values;
  (!best, values.(!best))

let maximin t =
  let cols = Array.length t.attacker in
  let col_min c =
    Array.fold_left (fun acc row -> min acc row.(c)) infinity t.utility
  in
  let values = Array.init cols col_min in
  argmax values

let is_equilibrium t ~row ~col =
  let v = t.utility.(row).(col) in
  let attacker_happy = Array.for_all (fun u -> u <= v +. 1e-9) t.utility.(row) in
  let designer_happy =
    Array.for_all (fun r -> r.(col) >= v -. 1e-9) t.utility
  in
  attacker_happy && designer_happy

let has_pure_equilibrium t =
  let rows = Array.length t.designer and cols = Array.length t.attacker in
  let found = ref None in
  for row = 0 to rows - 1 do
    for col = 0 to cols - 1 do
      if !found = None && is_equilibrium t ~row ~col then found := Some (row, col)
    done
  done;
  !found

let pp fmt t =
  Format.fprintf fmt "%-24s" "";
  Array.iter (fun a -> Format.fprintf fmt " %12s" a) t.attacker;
  Format.pp_print_newline fmt ();
  Array.iteri
    (fun i row ->
      Format.fprintf fmt "%-24s" t.designer.(i);
      Array.iter (fun u -> Format.fprintf fmt " %12.4f" u) row;
      Format.pp_print_newline fmt ())
    t.utility
