module Engine = Fair_exec.Engine
module Func = Fair_mpc.Func

type event = E00 | E01 | E10 | E11

let event_to_string = function
  | E00 -> "E00"
  | E01 -> "E01"
  | E10 -> "E10"
  | E11 -> "E11"

let pp_event fmt e = Format.pp_print_string fmt (event_to_string e)

let all_events = [ E00; E01; E10; E11 ]

type trial = {
  outcome : Engine.outcome;
  inputs : string array;
  func : Func.t;
}

type overrides = {
  learned : (trial -> bool) option;
  honest_got : (trial -> bool) option;
}

let no_overrides = { learned = None; honest_got = None }

type classification = {
  event : event;
  correctness_breach : bool;
}

let corrupted_parties trial =
  List.filter_map
    (fun (id, r) -> match r with Engine.Was_corrupted -> Some id | _ -> None)
    trial.outcome.Engine.results

let legitimate_outputs trial =
  let corrupted = corrupted_parties trial in
  let t = List.length corrupted in
  let patterns = if t > 12 then 1 lsl 12 else 1 lsl t in
  let outputs = ref [] in
  for mask = 0 to patterns - 1 do
    let inputs =
      Array.mapi
        (fun i x ->
          match List.find_index (fun c -> c = i + 1) corrupted with
          | Some k when (mask lsr k) land 1 = 1 -> trial.func.Func.default_input
          | _ -> x)
        trial.inputs
    in
    let y = Func.eval_exn trial.func inputs in
    if not (List.mem y !outputs) then outputs := y :: !outputs
  done;
  List.rev !outputs

let classify ?(overrides = no_overrides) trial =
  let legitimate = legitimate_outputs trial in
  let honest = Engine.honest_outputs trial.outcome in
  let learned =
    match overrides.learned with
    | Some f -> f trial
    | None ->
        List.exists
          (fun (_, v) -> List.mem v legitimate)
          trial.outcome.Engine.claims
  in
  let honest_values = List.map snd honest in
  let honest_got =
    match overrides.honest_got with
    | Some f -> f trial
    | None ->
        honest_values <> []
        && List.for_all
             (fun v -> match v with Some y -> List.mem y legitimate | None -> false)
             honest_values
        && (match honest_values with
           | Some y0 :: rest -> List.for_all (fun v -> v = Some y0) rest
           | _ -> true)
  in
  (* When every party is corrupted the paper assigns E11 semantics (the
     adversary gains no unfair advantage over anyone). *)
  let all_corrupted = honest = [] in
  let event =
    if all_corrupted then E11
    else
      match (learned, honest_got) with
      | false, false -> E00
      | false, true -> E01
      | true, false -> E10
      | true, true -> E11
  in
  let correctness_breach =
    List.exists
      (fun v -> match v with Some y -> not (List.mem y legitimate) | None -> false)
      honest_values
  in
  { event; correctness_breach }
