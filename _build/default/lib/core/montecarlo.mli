(** Monte-Carlo estimation of an adversary's expected utility û(Π, A)
    against a protocol (Equation 2 of the paper, with the best-simulator
    event mapping supplied by {!Events.classify}).

    Each trial derives an independent generator from the master seed, draws
    environment inputs, runs the engine, classifies the execution, and
    accumulates per-event counts.  Estimates carry the standard error of the
    utility so bound checks can be phrased as "≤ bound + 3σ" — the
    finite-sample reading of the paper's negligible slack. *)

module Rng = Fair_crypto.Rng
module Engine = Fair_exec.Engine
module Protocol = Fair_exec.Protocol
module Adversary = Fair_exec.Adversary
module Func = Fair_mpc.Func

type environment = Rng.t -> string array
(** The environment: draws the parties' inputs for one trial. *)

val fixed_inputs : string array -> environment
val uniform_field_inputs : n:int -> environment
(** Independent uniform field elements (as decimal strings) — exponential-
    size domains, as required by the lower-bound experiments. *)

val uniform_bit_inputs : n:int -> environment
val uniform_mod_inputs : m:int -> n:int -> environment

type estimate = {
  utility : float;  (** empirical û *)
  std_err : float;  (** standard error of [utility] *)
  distribution : Utility.distribution;
  counts : (Events.event * int) list;
  corrupted_counts : (int * int) list;  (** (#corrupted, occurrences) *)
  breaches : int;  (** correctness breaches observed *)
  trials : int;
}

val estimate :
  ?overrides:Events.overrides ->
  protocol:Protocol.t ->
  adversary:Adversary.t ->
  func:Func.t ->
  gamma:Payoff.t ->
  env:environment ->
  trials:int ->
  seed:int ->
  unit ->
  estimate

val estimate_with_cost : estimate -> cost:(int -> float) -> float
(** Reinterpret an estimate under corruption costs (Equation 5). *)

val best_response :
  ?overrides:Events.overrides ->
  protocol:Protocol.t ->
  adversaries:Adversary.t list ->
  func:Func.t ->
  gamma:Payoff.t ->
  env:environment ->
  trials:int ->
  seed:int ->
  unit ->
  Adversary.t * estimate
(** sup over a finite adversary zoo: the strategy with the highest measured
    utility, with ties broken by listing order.
    @raise Invalid_argument on an empty zoo. *)

val within_bound : estimate -> bound:float -> bool
(** [utility <= bound + 3·std_err + 1e-9]. *)

val attains_bound : estimate -> bound:float -> bool
(** [utility >= bound - 3·std_err - 1e-9]. *)
