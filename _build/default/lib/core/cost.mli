(** Corruption costs and ideal γ^C-fairness — Section 4.2 / Appendix B.2.

    A cost function C(I) = c(|I|) prices coalitions; the attacker's payoff
    becomes Σ γ_ij Pr[E_ij] − Σ c(t)·Pr[t corruptions] (Equation 5).  A
    protocol is ideally γ^C-fair (Definition 19) when its best attacker does
    no better than the best attacker against the dummy protocol Φ^F_sfe. *)

type cost = int -> float
(** c(t): the price of corrupting t parties; c(0) = 0 by convention. *)

val zero : cost
val linear : per_party:float -> cost

val theorem6 : Payoff.t -> n:int -> cost
(** The optimal cost of Theorem 6: c(t) = û(ΠOpt-nSFE, A_t) − s(t), where
    s(t) is the ideal-protocol payoff {!Bounds.ideal_utility}. *)

val dominates : c:cost -> c':cost -> n:int -> bool
(** Definition 20: c(t) ≥ c'(t) for every t ∈ [n]. *)

val strictly_dominates : c:cost -> c':cost -> n:int -> bool

val ideal_payoff_with_cost : Payoff.t -> cost:cost -> t:int -> float
(** Best-attacker payoff against Φ^F_sfe when corrupting t parties costs
    c(t): s(t) − c(t). *)

val ideal_value : Payoff.t -> cost:cost -> n:int -> float
(** sup over t ∈ 0..n of {!ideal_payoff_with_cost} — the right-hand side of
    Definition 19. *)

val is_ideally_fair :
  best_utility_with_cost:float -> std_err:float -> gamma:Payoff.t -> cost:cost -> n:int -> bool
(** Definition 19, empirically: measured best cost-adjusted utility ≤ ideal
    value + 3σ. *)

val phi_cost_correspondence : phi:(int -> float) -> gamma:Payoff.t -> cost
(** Lemma 22: the cost function c(t) = φ(t) − s(t) for which φ-fairness and
    ideal γ^C-fairness coincide. *)
