open Payoff

let opt2 g = (g.g10 +. g.g11) /. 2.0

let optn g ~n ~t =
  if t < 0 || t > n then invalid_arg "Bounds.optn";
  ((float_of_int t *. g.g10) +. (float_of_int (n - t) *. g.g11)) /. float_of_int n

let optn_best g ~n = optn g ~n ~t:(n - 1)

let balanced_sum g ~n = float_of_int (n - 1) *. (g.g10 +. g.g11) /. 2.0

let gmw_half g ~n ~t =
  (* Reconstruction threshold ⌈n/2⌉: any coalition of that size can block
     the public reconstruction and already holds enough shares to learn. *)
  let blocking = (n + 1) / 2 in
  if t >= blocking then g.g10 else g.g11

let gmw_half_sum g ~n =
  let sum = ref 0.0 in
  for t = 1 to n - 1 do
    sum := !sum +. gmw_half g ~n ~t
  done;
  !sum

let artificial_single g ~n =
  let nf = float_of_int n in
  (g.g10 /. nf) +. ((nf -. 1.0) /. nf *. (g.g10 +. g.g11) /. 2.0)

let artificial_sum g ~n =
  let nf = float_of_int n in
  (((3.0 *. nf) -. 1.0) *. g.g10 +. ((nf +. 1.0) *. g.g11)) /. (2.0 *. nf)

let ideal_utility g ~t = if t = 0 then g.g01 else g.g11

let balanced_cost g ~n ~t = optn g ~n ~t -. ideal_utility g ~t

let gk_upper ~p =
  if p < 1 then invalid_arg "Bounds.gk_upper";
  1.0 /. float_of_int p

let unfair_sfe g = g.g10
