(** Classification of a protocol execution into the paper's fairness events
    E00, E01, E10, E11 (Section 3, Step 2).

    The two questions are answered from ground truth, mirroring what the
    *best simulator* for the executed adversary would be forced to do:

    - {e Did the adversary learn the output?}  i = 1 iff the adversary
      registered a learned-output claim whose value is a {e legitimate}
      output of the evaluation.  An adversary that merely guesses has its
      claim rejected unless it happens to match — experiments that need
      exact simulator semantics (the Gordon–Katz protocols, where the
      adversary's held value collides with the output by chance) supply a
      [learned] override derived from audit data in the trace.
    - {e Did the honest parties receive their output?}  j = 1 iff every
      never-corrupted party output a legitimate value (and they all agree).

    A {e legitimate} output is [f] applied to the environment's inputs with
    any subset of the corrupted parties' inputs replaced by the function's
    default — the input substitutions the ideal functionality permits.  An
    honest party outputting a non-⊥ value outside this set is a correctness
    breach, which the classifier reports separately (it must have negligible
    probability for any protocol claiming to realize F_sfe^⊥). *)

module Engine = Fair_exec.Engine
module Func = Fair_mpc.Func

type event = E00 | E01 | E10 | E11

val pp_event : Format.formatter -> event -> unit
val event_to_string : event -> string
val all_events : event list

type trial = {
  outcome : Engine.outcome;
  inputs : string array;  (** the environment's inputs *)
  func : Func.t;
}

type overrides = {
  learned : (trial -> bool) option;
  honest_got : (trial -> bool) option;
}

val no_overrides : overrides

type classification = {
  event : event;
  correctness_breach : bool;
      (** some honest party output a non-⊥, non-legitimate value *)
}

val legitimate_outputs : trial -> string list
(** All evaluations over default-substituted corrupted inputs (deduplicated;
    capped at 2^12 substitution patterns — far above any experiment here). *)

val classify : ?overrides:overrides -> trial -> classification

val corrupted_parties : trial -> int list
(** Ids that were corrupted at any point of the execution. *)
