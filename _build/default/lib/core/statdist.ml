type counts = (string, int) Hashtbl.t

let count sample ~trials =
  let tbl = Hashtbl.create 16 in
  for i = 0 to trials - 1 do
    let x = sample i in
    Hashtbl.replace tbl x (1 + try Hashtbl.find tbl x with Not_found -> 0)
  done;
  tbl

let total_of tbl = float_of_int (Hashtbl.fold (fun _ c acc -> acc + c) tbl 0)

let total_variation a b =
  let na = total_of a and nb = total_of b in
  if na = 0.0 || nb = 0.0 then invalid_arg "Statdist.total_variation: empty sample";
  let keys = Hashtbl.create 16 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) a;
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) b;
  let sum =
    Hashtbl.fold
      (fun k () acc ->
        let pa = float_of_int (try Hashtbl.find a k with Not_found -> 0) /. na in
        let pb = float_of_int (try Hashtbl.find b k with Not_found -> 0) /. nb in
        acc +. abs_float (pa -. pb))
      keys 0.0
  in
  sum /. 2.0

let bias_bound ~support ~trials = sqrt (float_of_int support /. float_of_int trials)

let sample_distance ~a ~b ~trials =
  total_variation (count a ~trials) (count b ~trials)
