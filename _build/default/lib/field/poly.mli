(** Polynomials over {!Field}, used by Shamir secret sharing, the polynomial
    MAC, and verifiable secret sharing.

    A polynomial is represented by its coefficient array [c] with
    [c.(i)] the coefficient of [x^i]; the zero polynomial is [[||]]. *)

type t

val of_coeffs : Field.t array -> t
(** Trailing zero coefficients are trimmed so representations are canonical. *)

val coeffs : t -> Field.t array

val zero : t
val constant : Field.t -> t

val degree : t -> int
(** Degree of the polynomial; [-1] for the zero polynomial. *)

val eval : t -> Field.t -> Field.t
(** Horner evaluation. *)

val add : t -> t -> t
val mul : t -> t -> t
val scale : Field.t -> t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val random : degree:int -> constant:Field.t -> (unit -> Field.t) -> t
(** [random ~degree ~constant sample] draws a uniformly random polynomial of
    degree at most [degree] with constant term [constant], using [sample] for
    the remaining coefficients. *)

val interpolate : (Field.t * Field.t) list -> t
(** Lagrange interpolation through the given (distinct-x) points.
    @raise Invalid_argument on duplicate x-coordinates. *)

val interpolate_at : Field.t -> (Field.t * Field.t) list -> Field.t
(** [interpolate_at x points] evaluates the interpolating polynomial at [x]
    without materializing it — the common case is recovering a Shamir secret
    at [x = 0]. *)
