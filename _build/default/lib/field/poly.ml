type t = Field.t array
(* invariant: no trailing zero coefficient *)

let trim a =
  let n = ref (Array.length a) in
  while !n > 0 && Field.equal a.(!n - 1) Field.zero do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_coeffs a = trim (Array.copy a)
let coeffs t = Array.copy t

let zero = [||]
let constant c = trim [| c |]

let degree t = Array.length t - 1

let eval t x =
  let acc = ref Field.zero in
  for i = Array.length t - 1 downto 0 do
    acc := Field.add (Field.mul !acc x) t.(i)
  done;
  !acc

let add a b =
  let n = max (Array.length a) (Array.length b) in
  let get c i = if i < Array.length c then c.(i) else Field.zero in
  trim (Array.init n (fun i -> Field.add (get a i) (get b i)))

let mul a b =
  if Array.length a = 0 || Array.length b = 0 then zero
  else begin
    let n = Array.length a + Array.length b - 1 in
    let r = Array.make n Field.zero in
    Array.iteri
      (fun i ai ->
        Array.iteri (fun j bj -> r.(i + j) <- Field.add r.(i + j) (Field.mul ai bj)) b)
      a;
    trim r
  end

let scale c a = trim (Array.map (Field.mul c) a)

let equal a b = Array.length a = Array.length b && Array.for_all2 Field.equal a b

let pp fmt t =
  if Array.length t = 0 then Format.pp_print_string fmt "0"
  else
    Array.iteri
      (fun i c ->
        if i > 0 then Format.fprintf fmt " + ";
        Format.fprintf fmt "%a*x^%d" Field.pp c i)
      t

let random ~degree ~constant sample =
  if degree < 0 then invalid_arg "Poly.random: negative degree";
  trim (Array.init (degree + 1) (fun i -> if i = 0 then constant else sample ()))

let check_distinct points =
  let xs = List.map fst points in
  let sorted = List.sort Field.compare xs in
  let rec dup = function
    | a :: (b :: _ as rest) -> Field.equal a b || dup rest
    | _ -> false
  in
  if dup sorted then invalid_arg "Poly.interpolate: duplicate x-coordinates"

(* Lagrange basis polynomial for point i, materialized. *)
let interpolate points =
  check_distinct points;
  List.fold_left
    (fun acc (xi, yi) ->
      let basis =
        List.fold_left
          (fun b (xj, _) ->
            if Field.equal xi xj then b
            else
              let denom = Field.inv (Field.sub xi xj) in
              mul b (of_coeffs [| Field.mul (Field.neg xj) denom; denom |]))
          (constant Field.one) points
      in
      add acc (scale yi basis))
    zero points

let interpolate_at x points =
  check_distinct points;
  List.fold_left
    (fun acc (xi, yi) ->
      let li =
        List.fold_left
          (fun l (xj, _) ->
            if Field.equal xi xj then l
            else Field.mul l (Field.div (Field.sub x xj) (Field.sub xi xj)))
          Field.one points
      in
      Field.add acc (Field.mul yi li))
    Field.zero points
