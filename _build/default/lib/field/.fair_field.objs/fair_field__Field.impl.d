lib/field/field.ml: Array Char Format Hashtbl Stdlib String
