lib/field/poly.ml: Array Field Format List
