(** Prime-field arithmetic over GF(p) with p = 2^31 - 1 (the Mersenne prime
    2147483647).

    All protocol-level algebra in this repository — additive secret sharing,
    Shamir sharing, information-theoretic MACs, Beaver-triple multiplication —
    is carried out in this field.  Elements are represented as OCaml [int]s in
    the canonical range [0, p-1]; since p < 2^31, the product of two elements
    fits in OCaml's 63-bit native integers, so no big-number library is
    required.

    The field size bounds the forgery probability of the polynomial MAC at
    2^-31 per tag; see DESIGN.md §5 for why this is adequate for the
    reproduction. *)

type t = private int
(** A field element, canonically reduced into [0, p-1]. *)

val p : int
(** The field modulus, 2^31 - 1. *)

val zero : t
val one : t
val two : t

val of_int : int -> t
(** [of_int n] reduces [n] (possibly negative) modulo [p]. *)

val to_int : t -> int
(** The canonical representative in [0, p-1]. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

val inv : t -> t
(** Multiplicative inverse. @raise Division_by_zero on [zero]. *)

val div : t -> t -> t
(** [div a b = mul a (inv b)]. @raise Division_by_zero if [b = zero]. *)

val pow : t -> int -> t
(** [pow x n] with [n >= 0], by square-and-multiply. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** {1 Encoding}

    Protocol payloads (party inputs, outputs, keys) are encoded as vectors of
    field elements.  Each element carries 31 bits; we pack 2 bytes per element
    for simplicity and unambiguous round-tripping. *)

val encode_string : string -> t array
(** Encode a byte string as a length-prefixed vector of field elements. *)

val decode_string : t array -> string
(** Inverse of {!encode_string}.  @raise Invalid_argument on malformed input. *)

val encode_int : int -> t array
(** Encode a non-negative OCaml int (< 2^62). *)

val decode_int : t array -> int
(** Inverse of {!encode_int}. *)
