type t = int

let p = 2147483647 (* 2^31 - 1 *)

let zero = 0
let one = 1
let two = 2

let of_int n =
  let r = n mod p in
  if r < 0 then r + p else r

let to_int x = x

let add a b =
  let s = a + b in
  if s >= p then s - p else s

let sub a b =
  let d = a - b in
  if d < 0 then d + p else d

let neg a = if a = 0 then 0 else p - a

(* a, b < 2^31, so a*b < 2^62 fits in a native 63-bit int. *)
let mul a b = a * b mod p

let rec pow_aux acc x n =
  if n = 0 then acc
  else if n land 1 = 1 then pow_aux (mul acc x) (mul x x) (n asr 1)
  else pow_aux acc (mul x x) (n asr 1)

let pow x n =
  if n < 0 then invalid_arg "Field.pow: negative exponent";
  pow_aux one x n

let inv x =
  if x = 0 then raise Division_by_zero;
  (* Fermat: x^(p-2) mod p *)
  pow x (p - 2)

let div a b = mul a (inv b)

let equal (a : int) (b : int) = a = b
let compare (a : int) (b : int) = Stdlib.compare a b
let hash (x : int) = Hashtbl.hash x

let pp fmt x = Format.fprintf fmt "%d" x
let to_string = string_of_int

(* Two bytes per element; element 0 is the byte length of the string. *)
let encode_string s =
  let n = String.length s in
  let m = (n + 1) / 2 in
  Array.init (m + 1) (fun i ->
      if i = 0 then of_int n
      else
        let j = 2 * (i - 1) in
        let hi = Char.code s.[j] in
        let lo = if j + 1 < n then Char.code s.[j + 1] else 0 in
        of_int ((hi lsl 8) lor lo))

let decode_string a =
  if Array.length a = 0 then invalid_arg "Field.decode_string: empty";
  let n = to_int a.(0) in
  let m = (n + 1) / 2 in
  if Array.length a <> m + 1 then invalid_arg "Field.decode_string: bad length";
  String.init n (fun i ->
      let e = to_int a.(1 + (i / 2)) in
      if e > 0xFFFF then invalid_arg "Field.decode_string: bad element";
      if i mod 2 = 0 then Char.chr ((e lsr 8) land 0xFF)
      else Char.chr (e land 0xFF))

(* 30 bits per limb (strictly below the modulus), little-endian, fixed
   width 3 (covers < 2^90 > max_int). *)
let encode_int n =
  if n < 0 then invalid_arg "Field.encode_int: negative";
  let mask = (1 lsl 30) - 1 in
  [| of_int (n land mask); of_int ((n lsr 30) land mask); of_int (n lsr 60) |]

let decode_int a =
  if Array.length a <> 3 then invalid_arg "Field.decode_int: bad length";
  to_int a.(0) lor (to_int a.(1) lsl 30) lor (to_int a.(2) lsl 60)
