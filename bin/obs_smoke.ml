(* `dune build @obs-smoke` — the observability layer end to end, wired
   into @repro: run one Monte-Carlo estimate with everything off, re-run it
   with metrics and tracing on, and fail the alias unless (a) the two
   estimates are bit-identical (the zero-perturbation contract) and (b) the
   exported trace and metrics JSON parse back through the shared
   Fairness.Json parser with the expected shape. *)

module Mc = Fairness.Montecarlo
module Json = Fairness.Json
module Obs_json = Fairness.Obs_json
module Metrics = Fair_obs.Metrics
module Trace = Fair_obs.Trace
module Func = Fair_mpc.Func
module Adv = Fair_protocols.Adversaries

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("obs-smoke: FAIL — " ^ s); exit 1) fmt

let trials = 300

let estimate () =
  let func = Func.concat ~n:5 in
  Mc.estimate ~jobs:2 ~protocol:(Fair_protocols.Optn.hybrid func)
    ~adversary:(Adv.greedy ~func (Adv.Random_subset 4))
    ~func ~gamma:Fairness.Payoff.default
    ~env:(Mc.uniform_field_inputs ~n:5) ~trials ~seed:42 ()

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse path =
  match Json.of_string (read_file path) with
  | Ok j -> j
  | Error e -> fail "%s does not parse: %s" path e

let get path j key =
  match Json.member key j with
  | Ok v -> v
  | Error e -> fail "%s: missing %s (%s)" path key e

let () =
  let off = estimate () in
  Metrics.enable ();
  Trace.enable ();
  let on = estimate () in
  Obs_json.write_trace_file ~path:"obs_trace.json";
  Obs_json.write_metrics_file ~path:"obs_metrics.json";
  Trace.disable ();
  Metrics.disable ();
  if
    not
      (off.Mc.utility = on.Mc.utility
      && off.Mc.std_err = on.Mc.std_err
      && off.Mc.counts = on.Mc.counts
      && off.Mc.corrupted_counts = on.Mc.corrupted_counts
      && off.Mc.trajectory = on.Mc.trajectory)
  then
    fail "traced estimate differs from untraced (u: %.17g vs %.17g)" off.Mc.utility
      on.Mc.utility;
  (* Trace JSON: thread metadata plus at least the engine/mc spans. *)
  let t = parse "obs_trace.json" in
  (match Json.to_list (get "obs_trace.json" t "traceEvents") with
  | Error e -> fail "obs_trace.json: traceEvents not a list (%s)" e
  | Ok evs ->
      let names =
        List.filter_map (fun e -> match Json.member "name" e with Ok (Json.Str s) -> Some s | _ -> None) evs
      in
      List.iter
        (fun required ->
          if not (List.mem required names) then fail "trace has no %S span" required)
        [ "engine.run"; "engine.round"; "mc.range"; "mc.chunk" ]);
  (* Metrics JSON: the registry must have counted every trial exactly once. *)
  let m = parse "obs_metrics.json" in
  (match get "obs_metrics.json" m "schema" with
  | Json.Str "fairness-metrics/1" -> ()
  | _ -> fail "obs_metrics.json: bad schema");
  let counters = get "obs_metrics.json" (get "obs_metrics.json" m "metrics") "counters" in
  let counter name =
    match Json.to_int (get "obs_metrics.json" counters name) with
    | Ok v -> v
    | Error e -> fail "counter %s: %s" name e
  in
  if counter "mc.trials" <> trials then
    fail "mc.trials = %d, expected %d" (counter "mc.trials") trials;
  if counter "engine.executions" <> trials then
    fail "engine.executions = %d, expected %d" (counter "engine.executions") trials;
  ignore (get "obs_metrics.json" m "pool");
  Printf.printf
    "obs-smoke: OK — estimate bit-identical with tracing+metrics on; trace and metrics JSON parse\n"
