(* @soak-smoke — the chaos soak harness on its fixed deterministic
   schedule (Soak.default_config, seed 1105, ~2 s): scripted clients vs. a
   live server under worker kills, frame truncation, read stalls and one
   in-process daemon crash-restart.  Exit 0 only if every op is
   taxonomy-classified, the injected kills produced a supervised restart,
   the cache heals, and the healed bytes are identical to an inline
   resilience-free compute. *)

module S = Fair_service

let () =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fair-soak-%d.sock" (Unix.getpid ()))
  in
  let report = S.Soak.run ~socket () in
  print_endline ("soak-smoke: " ^ S.Soak.report_to_string report);
  if not (S.Soak.passed report) then exit 1
