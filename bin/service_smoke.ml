(* @service-smoke — the certificate server end to end, in-process:

     1. cold query  → computed (not cached), progress frames streamed;
        the query carries a client-stamped trace context which the result
        frame echoes back;
     2. warm query  → cache hit, byte-identical, answered without the
        scheduler or the domain pool moving (asserted on the server's own
        stats: cache.hits +1, pool counters frozen);
     3. byte identity → the same query computed inline (`query
        --no-daemon` path) at two different -j values matches the served
        bytes exactly;
     4. chaos isolation → a connection feeding the server a truncated
        frame gets a structured `malformed-frame` error while a
        concurrent clean connection's cold query completes correctly, and
        a scripted client crash mid-stream leaves the server serving;
     5. observability acceptance → the whole run happens with tracing,
        metrics and the query log switched ON; afterwards the exported
        Chrome trace must contain client.query, service.queue and
        service.exec spans all tagged with the cold query's trace id (one
        lane set per query in Perfetto), the qlog JSONL must hold a "cold"
        line with queue latency and engine counter deltas plus a "mem"
        line for the warm hit, and a final obs-OFF inline recompute must
        reproduce the served bytes exactly (zero perturbation).

   Exit 0 only if every assertion holds. *)

module S = Fair_service
module Json = Fairness.Json

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("service-smoke: FAIL — " ^ m);
      exit 1)
    fmt

let member k = function
  | Json.Obj kv -> (
      match List.assoc_opt k kv with
      | Some v -> v
      | None -> fail "stats reply has no %S field" k)
  | _ -> fail "stats reply is not an object"

let int_member k j =
  match Json.to_int (member k j) with
  | Ok n -> n
  | Result.Error e -> fail "stats field %S: %s" k e

let query =
  {
    S.Proto.q_kind = S.Proto.Search;
    q_experiment = "E1";
    q_budget = 2000;
    q_seed = 42;
    q_zoo = false;
    q_fresh = false;
    q_trace_id = "";
    q_span_id = "";
    q_deadline = 0.;
    q_attempt = 0;
  }

let connect ~socket () =
  match S.Client.connect ~socket ~timeout:120.0 () with
  | Ok c -> c
  | Result.Error e -> fail "%s" e

let plan_of spec =
  match Fair_faults.Faults.parse spec with
  | Ok p -> p
  | Result.Error e -> fail "bad fault spec %S: %s" spec e

let () =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fair-svc-%d.sock" (Unix.getpid ()))
  in
  (* Observability ON for the whole run — the acceptance bar is that every
     assertion below still holds, and section 5 then checks the artifacts
     and the zero-perturbation pairing. *)
  let qlog_path = "svc-qlog.jsonl" in
  let trace_path = "svc-trace.json" in
  Fair_obs.Trace.enable ();
  Fair_obs.Metrics.enable ();
  Fair_obs.Qlog.enable ();
  let qlog_oc = open_out qlog_path in
  Fair_obs.Qlog.set_sink (Some qlog_oc);
  let cache = S.Cache.create ~capacity:8 ~dir:"svc-cache" () in
  let server = S.Server.start ~socket ~cache ~queue_limit:8 ~jobs:2 () in

  (* 1 — cold query: computed, progress streamed, trace context echoed. *)
  let c1 = connect ~socket () in
  let traced = S.Client.with_trace query in
  let tid = traced.S.Proto.q_trace_id in
  let progress = ref 0 in
  let r1 =
    match S.Client.query c1 ~on_progress:(fun _ -> incr progress) traced with
    | Ok r -> r
    | Result.Error f -> fail "cold query: %s" (S.Failure.to_string f)
  in
  if r1.S.Proto.r_cached then fail "cold query claimed to be a cache hit";
  if !progress = 0 then fail "no progress frames streamed during the cold query";
  if r1.S.Proto.r_trace_id <> tid then
    fail "result frame did not echo the query's trace id (sent %s, got %s)" tid
      r1.S.Proto.r_trace_id;

  (* 2 — warm query: a hit, byte-identical, pool and scheduler untouched. *)
  let stats_before =
    match S.Client.stats c1 with
    | Ok j -> j
    | Result.Error f -> fail "stats: %s" (S.Failure.to_string f)
  in
  let r2 =
    match S.Client.query c1 query with
    | Ok r -> r
    | Result.Error f -> fail "warm query: %s" (S.Failure.to_string f)
  in
  if not r2.S.Proto.r_cached then fail "repeated query was not served from the cache";
  if r2.S.Proto.r_body <> r1.S.Proto.r_body then
    fail "cached certificate differs from the computed one";
  if r2.S.Proto.r_key <> r1.S.Proto.r_key then fail "cache key changed between identical queries";
  let stats_after =
    match S.Client.stats c1 with
    | Ok j -> j
    | Result.Error f -> fail "stats: %s" (S.Failure.to_string f)
  in
  let hits_delta =
    int_member "hits" (member "cache" stats_after) - int_member "hits" (member "cache" stats_before)
  in
  if hits_delta < 1 then fail "service.cache.hits did not increase on the warm query";
  let pool_frozen =
    Json.to_string (member "pool" stats_before) = Json.to_string (member "pool" stats_after)
  in
  if not pool_frozen then fail "the warm query touched the domain pool";

  (* 3 — byte identity with the inline (--no-daemon) path, at two -j values. *)
  let inline jobs =
    match S.Handlers.answer ~jobs query with
    | Ok (body, _) -> body
    | Result.Error f -> fail "inline compute: %s" (S.Failure.to_string f)
  in
  if inline 2 <> r1.S.Proto.r_body then fail "socket and inline bytes differ";
  if inline 1 <> r1.S.Proto.r_body then fail "inline bytes depend on -j";

  (* 4a — truncated frame: structured error on that connection, while a
     concurrent clean connection's cold query completes. *)
  let clean_result = ref None in
  let clean_thread =
    Thread.create
      (fun () ->
        let c = connect ~socket () in
        let q2 = { query with S.Proto.q_experiment = "E2" } in
        clean_result := Some (S.Client.query c q2);
        S.Client.close c)
      ()
  in
  let cbad = connect ~socket () in
  S.Client.set_chaos cbad (S.Chaos.create (plan_of "trunc@1") ~rng:(Fair_crypto.Rng.of_int_seed 7));
  (match S.Client.query cbad query with
  | Ok _ -> fail "a truncated frame was still answered with a result"
  | Result.Error (S.Failure.Malformed_frame _) -> ()
  | Result.Error (S.Failure.Connection_lost _) -> ()  (* teardown raced the error frame *)
  | Result.Error f -> fail "truncated frame: unexpected failure %s" (S.Failure.to_string f));
  S.Client.close cbad;
  Thread.join clean_thread;
  (match !clean_result with
  | Some (Ok r) when not r.S.Proto.r_cached -> ()
  | Some (Ok _) -> fail "concurrent clean query unexpectedly cached"
  | Some (Result.Error f) ->
      fail "clean connection failed alongside the faulty one: %s" (S.Failure.to_string f)
  | None -> fail "clean connection never answered");

  (* 4b — scripted client crash mid-stream; the server must keep serving. *)
  let ccrash = connect ~socket () in
  S.Client.set_chaos ccrash (S.Chaos.create (plan_of "crash@2:p1") ~rng:(Fair_crypto.Rng.of_int_seed 9));
  (match S.Client.ping ccrash with
  | Ok () -> ()
  | Result.Error f -> fail "pre-crash ping: %s" (S.Failure.to_string f));
  (match S.Client.query ccrash query with
  | Result.Error (S.Failure.Connection_lost _) -> ()
  | Ok _ -> fail "crashed client still got an answer"
  | Result.Error f -> fail "client crash: unexpected failure %s" (S.Failure.to_string f));
  (match S.Client.ping c1 with
  | Ok () -> ()
  | Result.Error f -> fail "server down after client crash: %s" (S.Failure.to_string f));

  S.Client.close c1;
  S.Server.stop server;

  (* 5 — observability acceptance: artifacts + zero perturbation. *)
  Fair_obs.Qlog.set_sink None;
  close_out qlog_oc;
  Fair_obs.Trace.disable ();
  Fair_obs.Metrics.disable ();
  Fair_obs.Qlog.disable ();

  (* 5a — one trace file, one lane set per query: the client round trip,
     the queue wait and the executor compute all carry the cold query's
     trace id. *)
  Fairness.Obs_json.write ~path:trace_path (Fairness.Obs_json.trace_document ());
  let events = Fair_obs.Trace.export () in
  let tagged name =
    List.exists
      (fun (e : Fair_obs.Trace.event) ->
        e.Fair_obs.Trace.name = name
        && List.assoc_opt "trace_id" e.Fair_obs.Trace.args = Some tid)
      events
  in
  List.iter
    (fun name ->
      if not (tagged name) then
        fail "trace export has no %S span carrying trace id %s" name tid)
    [ "client.query"; "service.queue"; "service.exec" ];
  (match Fairness.Json.of_string (In_channel.with_open_bin trace_path In_channel.input_all) with
  | Ok _ -> ()
  | Result.Error e -> fail "written trace file does not parse: %s" e);

  (* 5b — the wide query log: a "cold" line for the computed query with
     queue latency and engine counter deltas, a "mem" line for the warm
     hit. *)
  let qlog_lines =
    In_channel.with_open_bin qlog_path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
    |> List.map (fun l ->
           match Json.of_string l with
           | Ok j -> j
           | Result.Error e -> fail "qlog line does not parse: %s: %s" e l)
  in
  let str k j = match Json.to_str (member k j) with Ok s -> s | Result.Error e -> fail "qlog %S: %s" k e in
  let tiers = List.map (fun j -> str "tier" j) qlog_lines in
  let cold_line =
    match List.find_opt (fun j -> str "tier" j = "cold" && str "trace_id" j = tid) qlog_lines with
    | Some j -> j
    | None -> fail "qlog has no cold-tier line for trace id %s (tiers seen: %s)" tid
                (String.concat "," tiers)
  in
  (match member "queue_s" cold_line with
  | Json.Num q when q >= 0.0 -> ()
  | _ -> fail "cold qlog line has no numeric queue latency");
  (match member "counters" cold_line with
  | Json.Obj kv
    when List.exists
           (fun (k, _) ->
             List.exists
               (fun p -> String.length k > String.length p && String.sub k 0 (String.length p) = p)
               [ "engine."; "mc."; "race." ])
           kv -> ()
  | _ -> fail "cold qlog line carries no engine counter deltas");
  if str "outcome" cold_line <> "ok" then
    fail "cold query's qlog outcome is %S, expected ok" (str "outcome" cold_line);
  if not (List.mem "mem" tiers) then fail "warm hit left no mem-tier qlog line";

  (* 5c — paired obs-OFF recompute: the exact bytes the instrumented
     server served. *)
  if inline 2 <> r1.S.Proto.r_body then
    fail "inline recompute with observability off differs from the served bytes";

  Printf.printf
    "service-smoke: OK — cold compute streamed %d progress frames; warm query was a cache hit \
     (+%d hits, pool frozen) with byte-identical certificate; inline bytes match at -j 1 and \
     -j 2; truncated frame and client crash stayed isolated to their connections; trace %s \
     carries client/queue/exec lanes for trace id %s; qlog %s has cold+mem lines with queue \
     latency and counter deltas; obs-off recompute byte-identical\n"
    !progress hits_delta trace_path tid qlog_path
