(* @service-smoke — the certificate server end to end, in-process:

     1. cold query  → computed (not cached), progress frames streamed;
     2. warm query  → cache hit, byte-identical, answered without the
        scheduler or the domain pool moving (asserted on the server's own
        stats: cache.hits +1, pool counters frozen);
     3. byte identity → the same query computed inline (`query
        --no-daemon` path) at two different -j values matches the served
        bytes exactly;
     4. chaos isolation → a connection feeding the server a truncated
        frame gets a structured `malformed-frame` error while a
        concurrent clean connection's cold query completes correctly, and
        a scripted client crash mid-stream leaves the server serving.

   Exit 0 only if every assertion holds. *)

module S = Fair_service
module Json = Fairness.Json

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("service-smoke: FAIL — " ^ m);
      exit 1)
    fmt

let member k = function
  | Json.Obj kv -> (
      match List.assoc_opt k kv with
      | Some v -> v
      | None -> fail "stats reply has no %S field" k)
  | _ -> fail "stats reply is not an object"

let int_member k j =
  match Json.to_int (member k j) with
  | Ok n -> n
  | Result.Error e -> fail "stats field %S: %s" k e

let query =
  {
    S.Proto.q_kind = S.Proto.Search;
    q_experiment = "E1";
    q_budget = 2000;
    q_seed = 42;
    q_zoo = false;
    q_fresh = false;
  }

let connect ~socket () =
  match S.Client.connect ~socket ~timeout:120.0 () with
  | Ok c -> c
  | Result.Error e -> fail "%s" e

let plan_of spec =
  match Fair_faults.Faults.parse spec with
  | Ok p -> p
  | Result.Error e -> fail "bad fault spec %S: %s" spec e

let () =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fair-svc-%d.sock" (Unix.getpid ()))
  in
  let cache = S.Cache.create ~capacity:8 ~dir:"svc-cache" () in
  let server = S.Server.start ~socket ~cache ~queue_limit:8 ~jobs:2 () in

  (* 1 — cold query: computed, progress streamed. *)
  let c1 = connect ~socket () in
  let progress = ref 0 in
  let r1 =
    match S.Client.query c1 ~on_progress:(fun _ -> incr progress) query with
    | Ok r -> r
    | Result.Error f -> fail "cold query: %s" (S.Failure.to_string f)
  in
  if r1.S.Proto.r_cached then fail "cold query claimed to be a cache hit";
  if !progress = 0 then fail "no progress frames streamed during the cold query";

  (* 2 — warm query: a hit, byte-identical, pool and scheduler untouched. *)
  let stats_before =
    match S.Client.stats c1 with
    | Ok j -> j
    | Result.Error f -> fail "stats: %s" (S.Failure.to_string f)
  in
  let r2 =
    match S.Client.query c1 query with
    | Ok r -> r
    | Result.Error f -> fail "warm query: %s" (S.Failure.to_string f)
  in
  if not r2.S.Proto.r_cached then fail "repeated query was not served from the cache";
  if r2.S.Proto.r_body <> r1.S.Proto.r_body then
    fail "cached certificate differs from the computed one";
  if r2.S.Proto.r_key <> r1.S.Proto.r_key then fail "cache key changed between identical queries";
  let stats_after =
    match S.Client.stats c1 with
    | Ok j -> j
    | Result.Error f -> fail "stats: %s" (S.Failure.to_string f)
  in
  let hits_delta =
    int_member "hits" (member "cache" stats_after) - int_member "hits" (member "cache" stats_before)
  in
  if hits_delta < 1 then fail "service.cache.hits did not increase on the warm query";
  let pool_frozen =
    Json.to_string (member "pool" stats_before) = Json.to_string (member "pool" stats_after)
  in
  if not pool_frozen then fail "the warm query touched the domain pool";

  (* 3 — byte identity with the inline (--no-daemon) path, at two -j values. *)
  let inline jobs =
    match S.Handlers.answer ~jobs query with
    | Ok (body, _) -> body
    | Result.Error f -> fail "inline compute: %s" (S.Failure.to_string f)
  in
  if inline 2 <> r1.S.Proto.r_body then fail "socket and inline bytes differ";
  if inline 1 <> r1.S.Proto.r_body then fail "inline bytes depend on -j";

  (* 4a — truncated frame: structured error on that connection, while a
     concurrent clean connection's cold query completes. *)
  let clean_result = ref None in
  let clean_thread =
    Thread.create
      (fun () ->
        let c = connect ~socket () in
        let q2 = { query with S.Proto.q_experiment = "E2" } in
        clean_result := Some (S.Client.query c q2);
        S.Client.close c)
      ()
  in
  let cbad = connect ~socket () in
  S.Client.set_chaos cbad (S.Chaos.create (plan_of "trunc@1") ~rng:(Fair_crypto.Rng.of_int_seed 7));
  (match S.Client.query cbad query with
  | Ok _ -> fail "a truncated frame was still answered with a result"
  | Result.Error (S.Failure.Malformed_frame _) -> ()
  | Result.Error (S.Failure.Connection_lost _) -> ()  (* teardown raced the error frame *)
  | Result.Error f -> fail "truncated frame: unexpected failure %s" (S.Failure.to_string f));
  S.Client.close cbad;
  Thread.join clean_thread;
  (match !clean_result with
  | Some (Ok r) when not r.S.Proto.r_cached -> ()
  | Some (Ok _) -> fail "concurrent clean query unexpectedly cached"
  | Some (Result.Error f) ->
      fail "clean connection failed alongside the faulty one: %s" (S.Failure.to_string f)
  | None -> fail "clean connection never answered");

  (* 4b — scripted client crash mid-stream; the server must keep serving. *)
  let ccrash = connect ~socket () in
  S.Client.set_chaos ccrash (S.Chaos.create (plan_of "crash@2:p1") ~rng:(Fair_crypto.Rng.of_int_seed 9));
  (match S.Client.ping ccrash with
  | Ok () -> ()
  | Result.Error f -> fail "pre-crash ping: %s" (S.Failure.to_string f));
  (match S.Client.query ccrash query with
  | Result.Error (S.Failure.Connection_lost _) -> ()
  | Ok _ -> fail "crashed client still got an answer"
  | Result.Error f -> fail "client crash: unexpected failure %s" (S.Failure.to_string f));
  (match S.Client.ping c1 with
  | Ok () -> ()
  | Result.Error f -> fail "server down after client crash: %s" (S.Failure.to_string f));

  S.Client.close c1;
  S.Server.stop server;
  Printf.printf
    "service-smoke: OK — cold compute streamed %d progress frames; warm query was a cache hit \
     (+%d hits, pool frozen) with byte-identical certificate; inline bytes match at -j 1 and \
     -j 2; truncated frame and client crash stayed isolated to their connections\n"
    !progress hits_delta
