(* @cli-guard-smoke (resilience table) — the exit-code contract of the new
   failure paths, asserted on the real CLI binary run as a subprocess:

     | scenario                                  | exit | stderr mentions     |
     |-------------------------------------------|------|---------------------|
     | retries exhausted against a dead socket   |  1   | "retries exhausted" |
     | deadline expired while queued (shed)      |  1   | "deadline exceeded" |
     | query during a graceful drain             |  1   | "draining"          |

   All three are operational failures (exit 1, never 2 — the request was
   well-formed — and never 0 or a crash), each with its taxonomy name on
   stderr.  The CLI executable path arrives as argv(1) from the dune
   rule. *)

module S = Fair_service

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("exit-smoke: FAIL — " ^ m);
      exit 1)
    fmt

let cli =
  if Array.length Sys.argv < 2 then fail "usage: exit_smoke <path-to-fairness-cli>"
  else
    (* The dune rule hands over a cwd-relative path ("fairness_cli.exe");
       execvp would go looking in PATH instead, so absolutise it. *)
    let p = Sys.argv.(1) in
    if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p

let run_cli args =
  let err_path = Filename.temp_file "fair-exit" ".err" in
  let dev_null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let err_fd = Unix.openfile err_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let pid = Unix.create_process cli (Array.of_list (cli :: args)) Unix.stdin dev_null err_fd in
  Unix.close dev_null;
  Unix.close err_fd;
  let _, status = Unix.waitpid [] pid in
  let err = In_channel.with_open_bin err_path In_channel.input_all in
  (try Sys.remove err_path with Sys_error _ -> ());
  match status with
  | Unix.WEXITED n -> (n, err)
  | Unix.WSIGNALED n -> fail "cli killed by signal %d" n
  | Unix.WSTOPPED n -> fail "cli stopped by signal %d" n

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let expect ~label ~code ~stderr_has (got_code, got_err) =
  if got_code <> code then
    fail "%s: expected exit %d, got %d (stderr: %s)" label code got_code got_err;
  if not (contains got_err stderr_has) then
    fail "%s: stderr %S does not mention %S" label got_err stderr_has

let temp_socket tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "fair-exit-%s-%d.sock" tag (Unix.getpid ()))

(* Park a ~1 s fresh compute on the server's single worker so the next
   query demonstrably queues behind it (deadline case) or arrives while
   the drain is still waiting it out (draining case). *)
let occupy ~socket ~seed =
  Thread.create
    (fun () ->
      match S.Client.connect ~socket ~timeout:60.0 () with
      | Result.Error e -> fail "occupier cannot connect: %s" e
      | Ok c ->
          let q =
            {
              S.Proto.q_kind = S.Proto.Search;
              q_experiment = "E1";
              q_budget = 30_000;
              q_seed = seed;
              q_zoo = false;
              q_fresh = true;
              q_trace_id = "";
              q_span_id = "";
              q_deadline = 0.;
              q_attempt = 0;
            }
          in
          ignore (S.Client.query c q);
          S.Client.close c)
    ()

let wait_active server =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let active () =
    match S.Server.stats_json server with
    | Fairness.Json.Obj kv -> (
        match List.assoc_opt "queue" kv with
        | Some (Fairness.Json.Obj q) -> (
            match List.assoc_opt "active" q with Some (Fairness.Json.Num n) -> n >= 1. | _ -> false)
        | _ -> false)
    | _ -> false
  in
  while (not (active ())) && Unix.gettimeofday () < deadline do
    Thread.delay 0.005
  done;
  if not (active ()) then fail "occupying query never reached the executor"

let () =
  (* 1 — retry exhaustion: every attempt dies at connect (retryable), the
     budgeted retries run out, and the CLI takes its distinct exhaustion
     exit path. *)
  expect ~label:"retry exhaustion" ~code:1 ~stderr_has:"retries exhausted"
    (run_cli
       [ "query"; "E1"; "--socket"; temp_socket "nowhere"; "--budget"; "100";
         "--retries"; "2"; "--retry-budget"; "0.2" ]);

  (* 2 — deadline shed: single worker parked on a ~1 s compute, so a
     50 ms-deadline query is still queued when it expires. *)
  let socket = temp_socket "deadline" in
  let server = S.Server.start ~socket ~queue_limit:8 ~workers:1 ~jobs:1 () in
  let occupier = occupy ~socket ~seed:101 in
  wait_active server;
  expect ~label:"deadline shed" ~code:1 ~stderr_has:"deadline exceeded"
    (run_cli
       [ "query"; "E2"; "--socket"; socket; "--budget"; "100"; "--fresh";
         "--deadline"; "0.05" ]);
  Thread.join occupier;
  S.Server.stop server;

  (* 3 — draining: the drain starts while the worker is busy, so the
     server is in its refusing-new-work window when the query lands. *)
  let socket = temp_socket "drain" in
  let server = S.Server.start ~socket ~queue_limit:8 ~workers:1 ~jobs:1 () in
  let occupier = occupy ~socket ~seed:102 in
  wait_active server;
  let drainer = Thread.create (fun () -> ignore (S.Server.drain server ~timeout_s:30.0)) () in
  Thread.delay 0.05;
  expect ~label:"draining" ~code:1 ~stderr_has:"draining"
    (run_cli [ "query"; "E1"; "--socket"; socket; "--budget"; "100" ]);
  Thread.join occupier;
  Thread.join drainer;
  print_endline
    "exit-smoke: OK — retry exhaustion, deadline shed and draining all exit 1 with their \
     taxonomy names on stderr"
