(* Command-line driver: list and run the paper-reproduction experiments.

   $ fairness list
   $ fairness run E3 --trials 2000 --seed 42
   $ fairness all --markdown > report.md *)

open Cmdliner
module E = Fair_analysis.Experiments

let trials_arg =
  let doc = "Monte-Carlo trials per estimate (experiments scale this internally)." in
  Arg.(value & opt int 800 & info [ "t"; "trials" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Master seed; every run with the same seed is bit-for-bit reproducible." in
  Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the Monte-Carlo engine (default: the hardware's recommended \
     domain count). Parallelism never changes the numbers — the same seed gives \
     bit-identical output at any -j."
  in
  Arg.(value & opt int Fairness.Parallel.default_jobs & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

let markdown_arg =
  let doc = "Emit Markdown (the EXPERIMENTS.md format) instead of plain text." in
  Arg.(value & flag & info [ "markdown" ] ~doc)

let trace_arg =
  let doc =
    "Record a span timeline of the run (engine rounds, Monte-Carlo chunks, pool batches, \
     racing rounds) and write Chrome trace-event JSON to $(docv) — load it in \
     ui.perfetto.dev or chrome://tracing. Tracing never changes the numbers: the same \
     seed gives bit-identical output with or without it."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Collect the metrics registry (trial/round/message counters, histograms, pool \
     utilization) during the run and write a JSON snapshot to $(docv). Like --trace, \
     metrics are observation-only and cannot perturb results."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

(* Enable the requested observability sinks around [f], and flush them to
   disk even when [f] exits non-zero or raises: a failing run is exactly
   when the telemetry matters. *)
let with_obs ~trace ~metrics f =
  if trace <> None then Fair_obs.Trace.enable ();
  if metrics <> None then Fair_obs.Metrics.enable ();
  let flush () =
    Option.iter
      (fun path ->
        Fairness.Obs_json.write_trace_file ~path;
        Printf.eprintf "wrote %s\n%!" path)
      trace;
    Option.iter
      (fun path ->
        Fairness.Obs_json.write_metrics_file ~path;
        Printf.eprintf "wrote %s\n%!" path)
      metrics
  in
  Fun.protect ~finally:flush f

let list_cmd =
  let run () =
    List.iter
      (fun (s : E.spec) ->
        Printf.printf "%-4s %s\n%-4s   %s\n" s.E.eid s.E.etitle ""
          s.E.eclaim)
      E.registry;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the experiments (id, theorem, claim).")
    Term.(const run $ const ())

let print_result ~markdown r =
  if markdown then print_string (E.to_markdown r) else Format.printf "%a" E.pp r

let run_cmd =
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id (e.g. E3).")
  in
  let run id trials seed jobs markdown trace metrics =
    match E.find id with
    | None ->
        Printf.eprintf "unknown experiment %S; try `fairness list`\n" id;
        exit 2
    | Some spec ->
        with_obs ~trace ~metrics (fun () ->
            let r = spec.E.run ~trials ~seed ~jobs in
            print_result ~markdown r;
            if E.all_ok r then 0 else 1)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment and check its paper bounds.")
    Term.(
      const run $ id_arg $ trials_arg $ seed_arg $ jobs_arg $ markdown_arg $ trace_arg
      $ metrics_arg)

let all_cmd =
  let run trials seed jobs markdown trace metrics =
    with_obs ~trace ~metrics (fun () ->
        let failures = ref 0 in
        List.iter
          (fun (s : E.spec) ->
            let r = s.E.run ~trials ~seed ~jobs in
            print_result ~markdown r;
            print_newline ();
            if not (E.all_ok r) then incr failures)
          E.registry;
        if !failures = 0 then begin
          Printf.printf "all %d experiments PASS\n" (List.length E.registry);
          0
        end
        else begin
          Printf.printf "%d experiment(s) FAILED\n" !failures;
          1
        end)
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment (E1..E16).")
    Term.(
      const run $ trials_arg $ seed_arg $ jobs_arg $ markdown_arg $ trace_arg $ metrics_arg)

let sweep_cmd =
  let kind_arg =
    Arg.(
      required
      & pos 0 (some (enum [ ("gamma", `Gamma); ("n", `N); ("q", `Q) ])) None
      & info [] ~docv:"KIND" ~doc:"Sweep kind: gamma, n, or q.")
  in
  let run kind trials seed jobs markdown trace metrics =
    with_obs ~trace ~metrics (fun () ->
        let table =
          match kind with
          | `Gamma -> Fair_analysis.Sweep.gamma_sweep ~jobs ~trials ~seed ()
          | `N -> Fair_analysis.Sweep.n_sweep ~jobs ~ns:[ 2; 3; 4; 5; 6; 7 ] ~trials ~seed ()
          | `Q -> Fair_analysis.Sweep.q_sweep ~jobs ~qs:[ 0.0; 0.125; 0.25; 0.375; 0.5; 0.625; 0.75; 0.875; 1.0 ] ~trials ~seed ()
        in
        print_endline (Fair_analysis.Sweep.render ~markdown table);
        0)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Sweep a parameter (preference vector, party count, or designer bias) and tabulate \
          the measured fairness landscape.")
    Term.(
      const run $ kind_arg $ trials_arg $ seed_arg $ jobs_arg $ markdown_arg $ trace_arg
      $ metrics_arg)

let search_cmd =
  let module Certificate = Fair_search.Certificate in
  let module Landscape = Fair_search.Landscape in
  let id_arg =
    let doc = "Experiment id (e.g. E2), or `all' for every targeted experiment. Ignored with --grid." in
    Arg.(value & pos 0 string "all" & info [] ~docv:"ID" ~doc)
  in
  let budget_arg =
    let doc = "Total Monte-Carlo trial budget shared by all arms of one search." in
    Arg.(value & opt int 20_000 & info [ "b"; "budget" ] ~docv:"B" ~doc)
  in
  let grid_arg =
    let doc = "Instead of the registry, race the strategy space over a landscape grid (gamma or n)." in
    Arg.(
      value
      & opt (some (enum [ ("gamma", `Gamma); ("n", `N) ])) None
      & info [ "grid" ] ~docv:"KIND" ~doc)
  in
  let zoo_arg =
    let doc =
      "Race the fixed adversary zoo as extra arms (same seed derivation, same budget) and \
       record its best raced estimate in each certificate for comparison."
    in
    Arg.(value & flag & info [ "zoo" ] ~doc)
  in
  let unpaired_arg =
    let doc =
      "Use the unpaired racer (independent per-arm trial streams, full-budget discipline) \
       instead of the default CRN-paired fast path.  Certificates record the mode either way."
    in
    Arg.(value & flag & info [ "unpaired" ] ~doc)
  in
  let out_arg =
    let doc = "Directory to write one certificate JSON per search (created if missing)." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"DIR" ~doc)
  in
  let sanitize s =
    String.map
      (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.') as c -> c | _ -> '-')
      s
  in
  let save_cert dir (c : Certificate.t) =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path =
      Filename.concat dir (sanitize (String.lowercase_ascii c.Certificate.experiment) ^ ".json")
    in
    Certificate.save ~path c;
    Printf.eprintf "wrote %s\n%!" path
  in
  let run id budget grid zoo unpaired out seed jobs markdown trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let mode = if unpaired then Fair_search.Racing.Unpaired else Fair_search.Racing.Paired in
    match grid with
    | Some kind ->
        let table =
          match kind with
          | `Gamma -> Landscape.gamma_grid ~jobs ~budget ~seed ()
          | `N -> Landscape.n_grid ~jobs ~budget ~seed ()
        in
        print_endline (Landscape.render ~markdown table);
        Option.iter
          (fun dir -> List.iter (fun (_, c) -> save_cert dir c) table.Landscape.points)
          out;
        if List.for_all (fun (_, c) -> c.Certificate.within_bound) table.Landscape.points then 0
        else 1
    | None ->
        let specs =
          if String.lowercase_ascii id = "all" then E.registry
          else
            match E.find id with
            | Some s -> [ s ]
            | None ->
                Printf.eprintf "unknown experiment %S; try `fairness list`\n" id;
                exit 2
        in
        let certs = List.filter_map (E.searched ~budget ~zoo ~mode ~seed ~jobs) specs in
        if certs = [] then begin
          Printf.eprintf
            "%s has no search target (its number is not a supremum over adversaries)\n" id;
          exit 2
        end;
        print_endline (E.search_table ~markdown certs);
        Option.iter (fun dir -> List.iter (save_cert dir) certs) out;
        if List.for_all (fun (c : Certificate.t) -> c.Certificate.within_bound) certs then 0
        else 1
  in
  Cmd.v
    (Cmd.info "search"
       ~doc:
         "Race the declarative adversary space against an experiment's protocol under a shared \
          trial budget (successive halving) and certify the searched best response against the \
          paper bound.")
    Term.(
      const run $ id_arg $ budget_arg $ grid_arg $ zoo_arg $ unpaired_arg $ out_arg $ seed_arg
      $ jobs_arg $ markdown_arg $ trace_arg $ metrics_arg)

let chaos_cmd =
  let faults_arg =
    let doc =
      "Custom fault schedule to run instead of the built-in grid.  $(docv) is a \
       semicolon-separated list of rules: KIND[@ROUNDS][:SRC->DST][%PROB] with KIND one of \
       drop, dup, flip, trunc, delay+K, plus crash[@ROUNDS]:pN[%PROB].  Example: \
       'drop@3;flip@*%0.25;crash@1:p2'."
    in
    Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)
  in
  let only_arg =
    let doc =
      "Comma-separated schedule names to keep from the built-in grid (e.g. \
       'none,drop-q,crash-p2').  Ignored with --faults."
    in
    Arg.(value & opt (some string) None & info [ "only" ] ~docv:"NAMES" ~doc)
  in
  let run faults only trials seed jobs markdown trace metrics =
    let schedules =
      match faults with
      | Some spec -> (
          (* Validate up front so a typo is a usage error, not a failed run. *)
          match Fair_faults.Faults.parse spec with
          | Error e ->
              Printf.eprintf "bad --faults spec: %s\n" e;
              exit 2
          | Ok _ -> [ ("none", ""); ("custom", spec) ])
      | None -> (
          match only with
          | None -> E.chaos_schedules
          | Some names ->
              let want = String.split_on_char ',' names |> List.map String.trim in
              let kept = List.filter (fun (name, _) -> List.mem name want) E.chaos_schedules in
              if kept = [] then begin
                Printf.eprintf "no schedule matches %S; known: %s\n" names
                  (String.concat ", " (List.map fst E.chaos_schedules));
                exit 2
              end;
              kept)
    in
    with_obs ~trace ~metrics (fun () ->
        match E.chaos ~schedules ~trials ~seed ~jobs () with
        | r ->
            print_result ~markdown r;
            if E.all_ok r then 0 else 1
        | exception Fairness.Montecarlo.Fault_budget_exceeded { faulted; attempted; budget } ->
            Printf.eprintf
              "chaos: fault budget exceeded — %d of %d trials faulted (budget %.0f%%); \
               containment is no longer statistically sound\n"
              faulted attempted (100.0 *. budget);
            1)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the E16 chaos sweep: race each protocol's adversary zoo over faulty channels \
          (drop/dup/delay/flip/trunc/crash) and check the measured best-attacker utility \
          against the clean-channel fairness bound.  Exits non-zero on a bound violation or \
          a fault-budget overrun.")
    Term.(
      const run $ faults_arg $ only_arg $ trials_arg $ seed_arg $ jobs_arg $ markdown_arg
      $ trace_arg $ metrics_arg)

let demo_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PROTOCOL" ~doc:"Demo name (see `fairness demos`).")
  in
  let adversary_arg =
    let doc = "Adversary strategy name (default: the demo's first strategy)." in
    Arg.(value & opt (some string) None & info [ "a"; "adversary" ] ~docv:"NAME" ~doc)
  in
  let run name adversary seed =
    match Fair_analysis.Demo.find name with
    | None ->
        Printf.eprintf "unknown demo %S; try `fairness demos`\n" name;
        exit 2
    | Some entry -> (
        match Fair_analysis.Demo.adversary_of entry adversary with
        | Error e ->
            prerr_endline e;
            exit 2
        | Ok adv ->
            Fair_analysis.Demo.run entry ~adversary:adv ~seed Format.std_formatter;
            0)
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Run one protocol execution and print the round-by-round trace.")
    Term.(const run $ name_arg $ adversary_arg $ seed_arg)

let demos_cmd =
  let run () =
    List.iter
      (fun (e : Fair_analysis.Demo.entry) ->
        Printf.printf "%-18s %s\n%-18s strategies: %s\n" e.Fair_analysis.Demo.dname
          e.Fair_analysis.Demo.describe ""
          (String.concat ", " (List.map fst e.Fair_analysis.Demo.adversaries)))
      Fair_analysis.Demo.registry;
    0
  in
  Cmd.v
    (Cmd.info "demos" ~doc:"List the available protocol demos and their strategies.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* The service: `fairness serve` / `fairness query`                    *)

let socket_arg =
  let doc = "Unix-domain socket path of the certificate server." in
  Arg.(value & opt string "fairness.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let qlog_arg =
    let doc =
      "Append one JSON line per completed request to $(docv) (the wide query log): trace \
       id, kind, experiment, cache tier (mem|disk|cold|coalesced), queue latency, worker \
       id, trials spent, engine counter deltas, outcome, wall time.  Flushed per line, so \
       the file can be tailed live.  Observation-only: served bytes are identical with or \
       without it."
    in
    Arg.(value & opt (some string) None & info [ "qlog" ] ~docv:"FILE" ~doc)
  in
  let flight_arg =
    let doc =
      "Keep a flight recorder and dump it to $(docv) (atomically, last-writer-wins) on \
       failed queries, malformed frames, SIGUSR1 and clean shutdown: the recent query-log \
       window, recent trace spans, and a metrics snapshot with latency percentiles."
    in
    Arg.(value & opt (some string) None & info [ "flight" ] ~docv:"FILE" ~doc)
  in
  let cache_dir_arg =
    let doc =
      "Spill cache entries to $(docv) (created if missing): entries evicted from memory \
       stay answerable across restarts, content-addressed by query key."
    in
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let capacity_arg =
    let doc = "In-memory cache capacity (LRU-evicted beyond this)." in
    Arg.(value & opt int 256 & info [ "cache-capacity" ] ~docv:"N" ~doc)
  in
  let queue_limit_arg =
    let doc =
      "Bounded admission queue: past $(docv) pending queries, new ones are answered with \
       an explicit `overloaded' error instead of queueing without bound."
    in
    Arg.(value & opt int 64 & info [ "queue-limit" ] ~docv:"N" ~doc)
  in
  let workers_arg =
    let doc =
      "Executor-pool size: up to $(docv) cold queries compute concurrently (per-key \
       ordering and coalescing preserved).  Defaults to min(4, domain-pool jobs)."
    in
    Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N" ~doc)
  in
  let cost_budget_arg =
    let doc =
      "Cost-aware admission: bound the queue by $(docv) seconds of estimated work (a \
       per-kind moving average of measured compute time, warm-started from the --qlog \
       file when one exists) instead of depth alone.  --queue-limit stays as a floor — a \
       queue below it always admits.  0 disables and restores pure depth-limit admission."
    in
    Arg.(value & opt float 30.0 & info [ "cost-budget" ] ~docv:"SECONDS" ~doc)
  in
  let drain_timeout_arg =
    let doc =
      "On SIGTERM, drain gracefully: refuse new queries with a `draining' error, let \
       inflight work finish for up to $(docv) seconds, then stop.  SIGINT stops \
       immediately."
    in
    Arg.(value & opt float 30.0 & info [ "drain-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let run socket cache_dir capacity queue_limit cost_budget drain_timeout workers jobs trace
      qlog flight =
    let module Json = Fairness.Json in
    (* Metrics stay on for the daemon's whole life: the Stats reply's
       counters and latency percentiles read from them, and qlog events
       embed per-request counter deltas.  They aggregate integers outside
       every RNG and scheduling decision, so the served bytes are the same
       either way (asserted by the obs byte-identity tests). *)
    Fair_obs.Metrics.enable ();
    if trace <> None then Fair_obs.Trace.enable ();
    (* Warm-start the cost model from the previous run's qlog file — read
       BEFORE the sink below truncates it: a restarted daemon prices a
       cold search correctly from its first admission decision instead of
       relearning from the default estimate. *)
    let costs = Fair_service.Costmodel.create () in
    let seeded =
      match qlog with
      | Some path when Sys.file_exists path ->
          Fair_service.Costmodel.seed_from_file costs path
      | _ -> 0
    in
    let qlog_oc =
      match qlog with
      | None -> None
      | Some path -> (
          match open_out path with
          | oc ->
              Fair_obs.Qlog.enable ();
              Fair_obs.Qlog.set_sink (Some oc);
              Some oc
          | exception Sys_error m ->
              Printf.eprintf "cannot open qlog file: %s\n" m;
              exit 1)
    in
    let recorder =
      match flight with
      | None -> None
      | Some path ->
          (* The recorder feeds on the qlog ring: keep it recording even
             when no JSONL sink was asked for. *)
          Fair_obs.Qlog.enable ();
          Some (Fair_service.Recorder.create ~path ())
    in
    let cache = Fair_service.Cache.create ~capacity ?dir:cache_dir () in
    let server =
      try
        Fair_service.Server.start ~socket ~cache ~queue_limit ~cost_budget ~costs ~jobs
          ?workers ?recorder ()
      with Unix.Unix_error (e, _, _) ->
        Printf.eprintf "cannot listen on %s: %s\n" socket (Unix.error_message e);
        exit 1
    in
    (* One structured startup line: everything an operator (or a log
       pipeline) needs to identify this server instance, greppable as
       JSON rather than scraped from prose. *)
    let opt_str = function Some s -> Json.Str s | None -> Json.Null in
    Printf.eprintf "%s\n%!"
      (Json.to_string ~indent:false
         (Json.Obj
            [
              ("event", Json.Str "serve.start");
              ("version", Json.Str Fair_service.Version.code_version);
              ("socket", Json.Str socket);
              ("cache_capacity", Json.num_int capacity);
              ("cache_dir", opt_str cache_dir);
              ("queue_limit", Json.num_int queue_limit);
              ("cost_budget", Json.Num cost_budget);
              ("cost_seeded_events", Json.num_int seeded);
              ("drain_timeout", Json.Num drain_timeout);
              ( "workers",
                match workers with Some w -> Json.num_int w | None -> Json.Str "auto" );
              ("jobs", Json.num_int jobs);
              ("trace", opt_str trace);
              ("qlog", opt_str qlog);
              ("flight", opt_str flight);
              ("pid", Json.num_int (Unix.getpid ()));
            ]));
    let stop = ref false in
    let drain = ref false in
    let dump_requested = ref false in
    (* SIGINT stops immediately; SIGTERM drains: inflight work finishes
       (bounded by --drain-timeout), new queries get a structured
       `draining' refusal.  Handlers only raise flags; the actual
       drain/stop (locks, joins, file IO) runs on the main loop, where it
       cannot deadlock against whatever the interrupted thread was
       holding. *)
    Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> drain := true));
    Sys.set_signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> dump_requested := true));
    while not (!stop || !drain) do
      Thread.delay 0.2;
      if !dump_requested then begin
        dump_requested := false;
        match recorder with
        | Some r ->
            Fair_service.Recorder.dump r ~reason:"sigusr1";
            Printf.eprintf "flight recorder dumped to %s\n%!"
              (Fair_service.Recorder.path r)
        | None -> ()
      end
    done;
    (* [stop]/[drain] settle every reader and worker, then dump the
       recorder with reason "shutdown"; the qlog sink was flushed per
       line, so detaching and closing it afterwards loses nothing. *)
    if !drain && not !stop then begin
      prerr_endline "draining";
      let clean = Fair_service.Server.drain server ~timeout_s:drain_timeout in
      prerr_endline (if clean then "drained; shutting down" else "drain timed out; shutting down")
    end
    else begin
      prerr_endline "shutting down";
      Fair_service.Server.stop server
    end;
    Option.iter
      (fun path ->
        Fairness.Obs_json.write_trace_file ~path;
        Printf.eprintf "wrote %s\n%!" path)
      trace;
    (match qlog_oc with
    | Some oc ->
        Fair_obs.Qlog.set_sink None;
        close_out_noerr oc
    | None -> ());
    0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the fairness certificate server: a daemon answering search/run queries over a \
          Unix-domain socket, with a content-addressed certificate cache and fair \
          (round-robin, coalescing) scheduling of cache misses onto the domain pool.  \
          Results are byte-identical to the CLI at the same seed — and to themselves with \
          --trace/--qlog/--flight on or off.")
    Term.(
      const run $ socket_arg $ cache_dir_arg $ capacity_arg $ queue_limit_arg
      $ cost_budget_arg $ drain_timeout_arg $ workers_arg $ jobs_arg $ trace_arg $ qlog_arg
      $ flight_arg)

let query_cmd =
  let module S = Fair_service in
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id (e.g. E2).")
  in
  let kind_arg =
    let doc =
      "What to compute: `search' races the adversary space and returns the certificate \
       (ids without a search target are usage errors); `run' executes the experiment and \
       returns its result as JSON."
    in
    Arg.(
      value
      & opt (enum [ ("search", S.Proto.Search); ("run", S.Proto.Run) ]) S.Proto.Search
      & info [ "kind" ] ~docv:"KIND" ~doc)
  in
  let budget_arg =
    let doc = "Trial budget: total racing budget for `search', trials for `run'." in
    Arg.(value & opt int 20_000 & info [ "b"; "budget" ] ~docv:"B" ~doc)
  in
  let zoo_arg =
    let doc = "Race the fixed adversary zoo as extra arms (search only)." in
    Arg.(value & flag & info [ "zoo" ] ~doc)
  in
  let fresh_arg =
    let doc = "Bypass the server's cache: recompute and overwrite the entry." in
    Arg.(value & flag & info [ "fresh" ] ~doc)
  in
  let no_daemon_arg =
    let doc =
      "Compute inline in this process instead of talking to a server — same code path the \
       daemon's executor uses, hence byte-identical output."
    in
    Arg.(value & flag & info [ "no-daemon" ] ~doc)
  in
  let progress_arg =
    let doc = "Print the Monte-Carlo convergence stream to stderr as it arrives." in
    Arg.(value & flag & info [ "progress" ] ~doc)
  in
  let timeout_arg =
    let doc =
      "Give up on the server after $(docv) seconds of silence (bounds connection \
       establishment and every read)."
    in
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  let deadline_arg =
    let doc =
      "Relative deadline in seconds, carried to the server: if the query is still queued \
       when it expires, the server sheds it with a `deadline exceeded' error instead of \
       computing an answer nobody is waiting for."
    in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)
  in
  let retries_arg =
    let doc =
      "Retry up to $(docv) times on idempotent-safe failures only (connection lost before \
       a result, server overloaded, dead socket at connect) with capped exponential \
       backoff and decorrelated jitter.  Sleeps derive deterministically from --seed; \
       deliberate answers (unknown query, query failed, deadline exceeded, draining) are \
       never retried."
    in
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let retry_budget_arg =
    let doc = "Total backoff sleep allowed across all retries, in seconds." in
    Arg.(value & opt float 10.0 & info [ "retry-budget" ] ~docv:"SECONDS" ~doc)
  in
  let exit_of_failure = function
    | S.Failure.Unknown_query _ -> 2
    | S.Failure.Overloaded _ | S.Failure.Query_failed _ | S.Failure.Connection_lost _
    | S.Failure.Malformed_frame _ | S.Failure.Deadline_exceeded _ | S.Failure.Draining _ ->
        1
  in
  let trace_id_arg =
    let doc =
      "Echo the query's generated trace id (and the server's echo of it) to stderr — the \
       handle that stitches this request's spans out of the server's --trace export."
    in
    Arg.(value & flag & info [ "trace-id" ] ~doc)
  in
  let run id kind budget zoo fresh no_daemon progress timeout deadline retries retry_budget
      socket seed jobs echo_tid trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let q =
      {
        S.Proto.q_kind = kind;
        q_experiment = id;
        q_budget = budget;
        q_seed = seed;
        q_zoo = zoo;
        q_fresh = fresh;
        q_trace_id = "";
        q_span_id = "";
        q_deadline = (match deadline with Some d when d > 0. -> d | _ -> 0.);
        q_attempt = 0;
      }
    in
    if no_daemon then begin
      match S.Handlers.answer ~jobs q with
      | Ok (body, ok) ->
          print_string body;
          if ok then 0 else 1
      | Error f ->
          prerr_endline (S.Failure.to_string f);
          exit_of_failure f
    end
    else begin
      (* One attempt = one connection: a failed attempt's socket is dead or
         poisoned, so each retry starts from a fresh connect.  Connect
         failures are classified as Connection_lost so the retry policy
         can see them; with retries off the error keeps its original
         one-line form. *)
      let attempt ~attempt =
        match S.Client.connect ~socket ?timeout () with
        | Error msg -> Result.Error (S.Failure.Connection_lost { reason = msg })
        | Ok client ->
            (* Every daemon query carries a fresh trace context: generation
               is RNG-free and the fields are ignored by untraced servers,
               so there is no mode where sending them costs anything.  The
               attempt number rides along for the server's query log. *)
            let q = S.Client.with_trace { q with S.Proto.q_attempt = attempt } in
            if echo_tid then Printf.eprintf "trace-id: %s\n%!" q.S.Proto.q_trace_id;
            let on_progress (p : S.Proto.progress) =
              if progress then
                Printf.eprintf "progress: %d trials (+%d) mean %.4f ±%.4f\n%!"
                  p.S.Proto.p_after p.S.Proto.p_batch p.S.Proto.p_mean p.S.Proto.p_std_err
            in
            let r = S.Client.query client ~on_progress q in
            S.Client.close client;
            r
      in
      let finish res =
        if progress && res.S.Proto.r_cached then
          Printf.eprintf "cache hit (key %s)\n%!" res.S.Proto.r_key;
        if echo_tid then
          Printf.eprintf "trace-id echoed by server: %s\n%!"
            (if res.S.Proto.r_trace_id = "" then "(none — pre-trace server)"
             else res.S.Proto.r_trace_id);
        print_string res.S.Proto.r_body;
        if res.S.Proto.r_ok then 0 else 1
      in
      let policy = { S.Client.Retry.default with retries; budget_s = retry_budget } in
      match S.Client.Retry.run ~policy ~seed attempt with
      | Ok res -> finish res
      | Result.Error (`Failed (S.Failure.Connection_lost { reason } as f))
        when retries = 0 && String.length reason >= 7 && String.sub reason 0 7 = "cannot " ->
          (* A dead socket with retries off keeps its pre-retry one-line
             form ("cannot connect to ...") — an operational failure (1),
             not a usage error, and never a raw Unix_error backtrace. *)
          prerr_endline reason;
          exit_of_failure f
      | Result.Error (`Failed f) ->
          prerr_endline (S.Failure.to_string f);
          exit_of_failure f
      | Result.Error (`Exhausted (attempts, f)) ->
          (* The distinct exhaustion exit path: the failure was retryable,
             the budget was not enough. *)
          Printf.eprintf "retries exhausted after %d attempt(s): %s\n" attempts
            (S.Failure.to_string f);
          1
    end
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Ask the certificate server for a search certificate or an experiment run.  \
          Repeated queries with the same parameters are served from the content-addressed \
          cache; --fresh forces recomputation; --no-daemon computes inline without a server.")
    Term.(
      const run $ id_arg $ kind_arg $ budget_arg $ zoo_arg $ fresh_arg $ no_daemon_arg
      $ progress_arg $ timeout_arg $ deadline_arg $ retries_arg $ retry_budget_arg
      $ socket_arg $ seed_arg $ jobs_arg $ trace_id_arg $ trace_arg $ metrics_arg)

let stat_cmd =
  let module S = Fair_service in
  let module Json = Fairness.Json in
  let watch_arg =
    let doc =
      "Refresh every $(docv) seconds (default 2 when given without a value), clearing the \
       screen each time, until interrupted."
    in
    Arg.(value & opt ~vopt:(Some 2.0) (some float) None & info [ "watch" ] ~docv:"SECONDS" ~doc)
  in
  let json_arg =
    let doc = "Print the raw stats JSON instead of the pretty summary." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let timeout_arg =
    let doc = "Give up on the server after $(docv) seconds of silence." in
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  (* Tolerant readers: a field the server does not send (an older daemon)
     renders as a placeholder, never a crash — the stats screen must work
     against any server version. *)
  let get path j =
    List.fold_left
      (fun acc k -> match acc with Ok v -> Json.member k v | e -> e)
      (Ok j) path
  in
  let geti path j =
    match get path j with
    | Ok v -> ( match Json.to_int v with Ok n -> n | Error _ -> 0)
    | Error _ -> 0
  in
  let gets path j =
    match get path j with
    | Ok v -> ( match Json.to_str v with Ok s -> s | Error _ -> "?")
    | Error _ -> "?"
  in
  let getb path j = match get path j with Ok (Json.Bool b) -> b | _ -> false in
  let render socket j =
    let b = Buffer.create 1024 in
    Printf.bprintf b "fairness service @ %s — %s\n" socket (gets [ "version" ] j);
    Printf.bprintf b "cache   %d hits (%d from disk), %d misses, %d evictions, %d entries\n"
      (geti [ "cache"; "hits" ] j)
      (geti [ "cache"; "disk_hits" ] j)
      (geti [ "cache"; "misses" ] j)
      (geti [ "cache"; "evictions" ] j)
      (geti [ "cache"; "entries" ] j);
    Printf.bprintf b "queue   depth %d/%d, active %d, workers %d\n"
      (geti [ "queue"; "depth" ] j)
      (geti [ "queue"; "limit" ] j)
      (geti [ "queue"; "active" ] j)
      (geti [ "queue"; "workers" ] j);
    Printf.bprintf b "obs     tracing %s (%d spans dropped), qlog %s (%d events), flight %s\n"
      (if getb [ "observability"; "tracing" ] j then "on" else "off")
      (geti [ "observability"; "trace_dropped" ] j)
      (if getb [ "observability"; "qlog" ] j then "on" else "off")
      (geti [ "observability"; "qlog_recorded" ] j)
      (match get [ "observability"; "flight_recorder" ] j with
      | Ok (Json.Str p) -> p
      | _ -> "-");
    (match get [ "percentiles" ] j with
    | Ok (Json.Obj fields) when fields <> [] ->
        Printf.bprintf b "latency  (p50 / p90 / p99, histogram upper bounds)\n";
        List.iter
          (fun (name, v) ->
            let p k =
              match Json.member k v with
              | Ok (Json.Num x) -> Printf.sprintf "%.4g" x
              | _ -> "-"
            in
            Printf.bprintf b "  %-38s %8s %8s %8s\n" name (p "p50") (p "p90") (p "p99"))
          fields
    | _ -> ());
    (match get [ "metrics"; "counters" ] j with
    | Ok (Json.Obj fields) ->
        let live =
          List.filter (fun (_, v) -> match v with Json.Num x -> x <> 0.0 | _ -> false) fields
        in
        if live <> [] then begin
          Printf.bprintf b "counters (non-zero)\n";
          List.iter
            (fun (name, v) ->
              Printf.bprintf b "  %-38s %d\n" name
                (match Json.to_int v with Ok n -> n | Error _ -> 0))
            live
        end
    | _ -> ());
    Buffer.contents b
  in
  let fetch socket timeout =
    match S.Client.connect ~socket ?timeout () with
    | Error msg -> Error msg
    | Ok client ->
        let r = S.Client.stats client in
        S.Client.close client;
        (match r with Ok j -> Ok j | Error f -> Error (S.Failure.to_string f))
  in
  let run socket timeout watch as_json =
    match watch with
    | None -> (
        match fetch socket timeout with
        | Error msg ->
            prerr_endline msg;
            1
        | Ok j ->
            if as_json then print_endline (Json.to_string j)
            else print_string (render socket j);
            0)
    | Some interval ->
        let interval = if interval <= 0.0 then 2.0 else interval in
        (* Reconnect per refresh so a server restart heals into the next
           frame instead of wedging the watch. *)
        let rec loop () =
          (match fetch socket timeout with
          | Error msg -> Printf.printf "\027[2J\027[H%s\n(unreachable: %s)\n%!" socket msg
          | Ok j ->
              if as_json then Printf.printf "%s\n%!" (Json.to_string ~indent:false j)
              else Printf.printf "\027[2J\027[H%s%!" (render socket j));
          Thread.delay interval;
          loop ()
        in
        loop ()
  in
  Cmd.v
    (Cmd.info "stat"
       ~doc:
         "Show the certificate server's live introspection: cache and queue state, the full \
          metrics snapshot, and p50/p90/p99 latency estimates derived from its histograms.  \
          --watch turns it into a refreshing dashboard.")
    Term.(const run $ socket_arg $ timeout_arg $ watch_arg $ json_arg)

let main =
  let doc = "Reproduction harness for 'How Fair is Your Protocol?' (PODC 2015)" in
  let man =
    [
      `S "EXIT STATUS";
      `P
        "Every subcommand follows one convention: $(b,0) — success (all paper bounds hold, \
         the query was answered); $(b,1) — a fairness bound violation, a failed check, or an \
         operational failure (server overloaded, unreachable, or lost mid-stream); $(b,2) — \
         usage error (unknown experiment id, malformed --faults spec, a query kind the \
         experiment does not support).";
    ]
  in
  Cmd.group (Cmd.info "fairness" ~version:"1.0.0" ~doc ~man)
    [
      list_cmd; run_cmd; all_cmd; search_cmd; chaos_cmd; demo_cmd; demos_cmd; sweep_cmd;
      serve_cmd; query_cmd; stat_cmd;
    ]

let () = exit (Cmd.eval' main)
