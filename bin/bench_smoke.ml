(* `dune build @bench-smoke` — a seconds-scale slice of bench/main.ml's
   sequential-vs-parallel comparison, wired into @repro so every smoke run
   re-proves the pool's determinism contract: the pooled estimate must be
   bit-for-bit the sequential one (utility, std_err, event tables), else
   exit non-zero and fail the alias.  The speedup is printed for eyeballs
   only — on a single-core host it is noise, and the line says so. *)

module Mc = Fairness.Montecarlo
module Parallel = Fairness.Parallel
module Func = Fair_mpc.Func
module Adv = Fair_protocols.Adversaries

let () =
  let swap = Func.concat ~n:5 in
  let protocol = Fair_protocols.Optn.hybrid swap in
  let adversary = Adv.greedy ~func:swap (Adv.Random_subset 4) in
  let trials = 300 in
  let estimate ~jobs =
    Mc.estimate ~jobs ~protocol ~adversary ~func:swap ~gamma:Fairness.Payoff.default
      ~env:(Mc.uniform_field_inputs ~n:5) ~trials ~seed:42 ()
  in
  let wall f =
    let t0 = Fair_obs.Clock.now_ns () in
    let r = f () in
    (r, Fair_obs.Clock.elapsed_s ~since_ns:t0)
  in
  let avail = Parallel.default_jobs in
  let degraded = avail < 2 in
  let jobs = max 2 avail in
  ignore (estimate ~jobs:1);
  let e_seq, t_seq = wall (fun () -> estimate ~jobs:1) in
  let e_par, t_par = wall (fun () -> estimate ~jobs) in
  let bit_identical =
    e_seq.Mc.utility = e_par.Mc.utility
    && e_seq.Mc.std_err = e_par.Mc.std_err
    && e_seq.Mc.counts = e_par.Mc.counts
    && e_seq.Mc.corrupted_counts = e_par.Mc.corrupted_counts
  in
  Printf.printf
    "bench-smoke: %d trials, seq %.3fs vs pool(jobs=%d) %.3fs, speedup %.2fx%s, workers spawned %d\n"
    trials t_seq jobs t_par (t_seq /. t_par)
    (if degraded then " (degraded: 1 core, speedup is noise)" else "")
    (Parallel.pool_stats ()).Parallel.spawned;
  if not bit_identical then begin
    Printf.eprintf
      "bench-smoke: FAIL — pooled estimate differs from sequential (u: %.17g vs %.17g)\n"
      e_seq.Mc.utility e_par.Mc.utility;
    exit 1
  end;
  print_endline "bench-smoke: OK — pooled run bit-identical to sequential"
