(* `dune build @bench-smoke` — a seconds-scale slice of bench/main.ml's
   sequential-vs-parallel comparison, wired into @repro so every smoke run
   re-proves three contracts:

   1. Determinism: the pooled estimate must be bit-for-bit the sequential
      one (utility, std_err, event tables).
   2. Allocation: the per-trial minor-heap footprint of the opt2 and optn
      kernels must stay under a budget set ~1.5x above the arena-path
      measurement, so a regression that reintroduces per-envelope or
      per-trial-setup allocation fails loudly here rather than showing up
      as a silent slowdown.
   3. Pool health: the parallel leg must actually fan out through the pool
      (a batch that silently runs inline would time the sequential path
      and call it "parallel"), and on a multi-core host it must not be
      slower than the sequential leg.  On a single-core host the speedup
      is noise, the line says so, and only the fan-out half is enforced. *)

module Mc = Fairness.Montecarlo
module Parallel = Fairness.Parallel
module Func = Fair_mpc.Func
module Adv = Fair_protocols.Adversaries

let failures = ref 0

let check name ok detail =
  Printf.printf "bench-smoke: %s %s (%s)\n" (if ok then "ok  " else "FAIL") name detail;
  if not ok then incr failures

(* Per-trial minor words of a sequential estimate, warmed so one-time setup
   (Lamport key pool, Prep cache, domain-local arena growth) is excluded —
   the budget is about the steady-state trial loop. *)
let minor_words_per_trial ~protocol ~adversary ~func ~env ~trials =
  let run seed =
    ignore
      (Mc.estimate ~jobs:1 ~protocol ~adversary ~func ~gamma:Fairness.Payoff.default ~env
         ~trials ~seed ())
  in
  run 7;
  let w0 = Gc.minor_words () in
  run 8;
  (Gc.minor_words () -. w0) /. float_of_int trials

let () =
  let swap = Func.concat ~n:5 in
  let protocol = Fair_protocols.Optn.hybrid swap in
  let adversary = Adv.greedy ~func:swap (Adv.Random_subset 4) in
  let trials = 300 in
  let estimate ~jobs =
    Mc.estimate ~jobs ~protocol ~adversary ~func:swap ~gamma:Fairness.Payoff.default
      ~env:(Mc.uniform_field_inputs ~n:5) ~trials ~seed:42 ()
  in
  let wall f =
    let t0 = Fair_obs.Clock.now_ns () in
    let r = f () in
    (r, Fair_obs.Clock.elapsed_s ~since_ns:t0)
  in
  let avail = Parallel.default_jobs in
  let degraded = avail < 2 in
  let jobs = max 2 avail in
  ignore (estimate ~jobs:1);
  let e_seq, t_seq = wall (fun () -> estimate ~jobs:1) in
  let s_par0 = Parallel.pool_stats () in
  let e_par, t_par = wall (fun () -> estimate ~jobs) in
  let s_par1 = Parallel.pool_stats () in
  let bit_identical =
    e_seq.Mc.utility = e_par.Mc.utility
    && e_seq.Mc.std_err = e_par.Mc.std_err
    && e_seq.Mc.counts = e_par.Mc.counts
    && e_seq.Mc.corrupted_counts = e_par.Mc.corrupted_counts
  in
  Printf.printf
    "bench-smoke: %d trials, seq %.3fs vs pool(jobs=%d) %.3fs, speedup %.2fx%s, workers spawned %d\n"
    trials t_seq jobs t_par (t_seq /. t_par)
    (if degraded then " (degraded: 1 core, speedup is noise)" else "")
    s_par1.Parallel.spawned;
  check "pooled run bit-identical to sequential" bit_identical
    (Printf.sprintf "u %.17g vs %.17g" e_seq.Mc.utility e_par.Mc.utility);
  check "parallel leg fanned out through the pool"
    (s_par1.Parallel.pooled_batches > s_par0.Parallel.pooled_batches)
    (Printf.sprintf "pooled batches +%d, inline +%d"
       (s_par1.Parallel.pooled_batches - s_par0.Parallel.pooled_batches)
       (s_par1.Parallel.inline_batches - s_par0.Parallel.inline_batches));
  if degraded then
    print_endline "bench-smoke: skip pooled-throughput guard (single-core host)"
  else
    check "pooled leg not slower than sequential" (t_par <= t_seq)
      (Printf.sprintf "seq %.3fs, pool %.3fs" t_seq t_par);
  (* Allocation budgets: measured on the arena fast path (see DESIGN.md
     §10) at ~16k words/trial for optn-n5/t4 and ~9k for opt2; 1.5x
     headroom tolerates compiler/stdlib drift but not a reintroduced
     per-envelope allocation path (which costs several multiples). *)
  let optn_words =
    minor_words_per_trial ~protocol ~adversary ~func:swap
      ~env:(Mc.uniform_field_inputs ~n:5) ~trials:200
  in
  check "optn-n5 minor words per trial within budget" (optn_words <= 25_000.0)
    (Printf.sprintf "%.0f <= 25000" optn_words);
  let opt2_words =
    minor_words_per_trial ~protocol:(Fair_protocols.Opt2.hybrid Func.swap)
      ~adversary:(Adv.greedy ~func:Func.swap Adv.Random_party) ~func:Func.swap
      ~env:(Mc.uniform_field_inputs ~n:2) ~trials:200
  in
  check "opt2 minor words per trial within budget" (opt2_words <= 14_000.0)
    (Printf.sprintf "%.0f <= 14000" opt2_words);
  if !failures > 0 then begin
    Printf.eprintf "bench-smoke: %d check(s) FAILED\n" !failures;
    exit 1
  end;
  print_endline "bench-smoke: OK"
